#!/usr/bin/env python
"""The Section 7 ECA trigger language, on a live restaurant guide.

The paper's future-work list proposes "an event-condition-action trigger
language for OEM based on ideas from DOEM and Chorel".  This demo wires
the implemented trigger manager to a month of guide evolution observed
through snapshots (so the triggers fire on *inferred* changes -- exactly
the situation where source-side triggers are unavailable, the paper's
motivating constraint).

Rules demonstrated:

* unconditional:   every newly opened restaurant;
* value-filtered:  price updates whose new value is a string ("moderate");
* Chorel-guarded:  price hikes -- the condition consults the DOEM history
  (old vs. new value of the very update that fired the event);
* navigation:      comments added to restaurants with a rating of 4+.

Run:  python examples/triggers_demo.py
"""

from repro import (
    DOEMDatabase,
    Event,
    OEMDatabase,
    RestaurantGuideSource,
    TriggerManager,
    Wrapper,
    current_snapshot,
    oem_diff,
    parse_timestamp,
)


def main():
    source = RestaurantGuideSource(seed=2024, initial_restaurants=8,
                                   events_per_day=2.5)
    wrapper = Wrapper(source, name="guide")
    manager = TriggerManager(DOEMDatabase(OEMDatabase(root="answer")),
                             name="Guide")
    graph = manager.doem.graph

    def name_near(node):
        """The name of the restaurant owning (or being) ``node``."""
        candidates = [node] + [arc.source for arc in graph.in_arcs(node)]
        for candidate in candidates:
            for child in graph.children(candidate, "name"):
                return graph.value(child)
        return node

    log = []

    manager.on(
        "opened", Event("add", label="restaurant"),
        lambda a: log.append(f"[{a.at}] OPENED: {name_near(a.subject)}"))

    manager.on(
        "went-wordy", Event("update", value="moderate"),
        lambda a: log.append(
            f"[{a.at}] now 'moderate': {name_near(a.subject)}"))

    manager.on(
        "price-hike", Event("update"),
        lambda a: log.append(
            f"[{a.at}] PRICE HIKE at {name_near(a.subject)}: "
            f"{a.condition_rows.first()['old-value']} -> "
            f"{a.condition_rows.first()['new-value']}"),
        condition="select OV, NV from NEW<upd at T from OV to NV> "
                  "where NV > OV and NV > 20 and T = t[0]")

    manager.on(
        "hot-spot-buzz", Event("add", label="comment"),
        lambda a: log.append(
            f"[{a.at}] buzz at {name_near(a.bindings['PARENT'])}: "
            f"\"{graph.value(a.subject)}\""),
        condition="select R from PARENT.rating R where R >= 4")

    # Drive: poll daily, diff, fold through the trigger manager.  The
    # rules were registered above but the very first poll (the initial
    # load, where *everything* is new) is folded with rules disabled --
    # the demo watches genuine evolution, not the bootstrap.
    reserved = {"answer"}
    start = parse_timestamp("1Dec96")
    for day in range(30):
        when = start.plus(days=day + 1)
        wrapper.advance(when)
        result = wrapper.poll("select guide.restaurant")
        changes = oem_diff(current_snapshot(manager.doem), result,
                           reserved_ids=reserved)
        if day == 0:
            for rule in manager.rules():
                rule.enabled = False
        manager.fold(when, changes)
        if day == 0:
            for rule in manager.rules():
                rule.enabled = True
        reserved.update(changes.created_nodes())

    print(f"30 days, {len(manager.activations)} rule activation(s):\n")
    for line in log:
        print(" ", line)

    print("\nper-rule firing counts:")
    for rule in manager.rules():
        print(f"  {rule.name}: {rule.fired_count}")


if __name__ == "__main__":
    main()
