#!/usr/bin/env python
"""Example 6.1, verbatim: the three-poll QSS walkthrough.

The subscription is created on December 30th 1996 at 10:00am with
frequency "every night at 11:30pm"; the Hakata restaurant appears in the
source on January 1st 1997.  The paper's predicted timeline:

* t1 = 30Dec96 11:30pm -> both initial restaurants reported (R0 is empty,
  so everything carries a cre annotation and t[-1] is negative infinity);
* t2 = 31Dec96 11:30pm -> no notification (nothing changed);
* t3 = 1Jan97 11:30pm  -> exactly the new "Hakata" object.

Run:  python examples/query_subscription.py
"""

from repro import COMPLEX, OEMDatabase, QSC, QSSServer, Wrapper, parse_timestamp


class GuideSource:
    """A scripted source following Example 2.2's dates."""

    def __init__(self):
        self.now = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        counter = [0]

        def atom(value):
            counter[0] += 1
            return db.create_node(f"a{counter[0]}", value)

        names = ["Bangkok Cuisine", "Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            db.add_arc(node, "name", atom(name))
        return db


def main():
    server = QSSServer(start="30Dec96 10:00am", deliver_empty=True)
    server.register_wrapper("guide", Wrapper(GuideSource(), name="guide"))
    client = QSC(server, user="reader")

    # The paper's subscription S = (f, Ql, Qc), stated as definitions:
    client.subscribe(
        name="Restaurants",
        frequency="every night at 11:30pm",
        polling_query="define polling query Restaurants as "
                      "select guide.restaurant",
        filter_query="define filter query NewRestaurants as "
                     "select Restaurants.restaurant<cre at T> "
                     "where T > t[-1]",
        wrapper="guide")

    server.run_until("2Jan97")

    doem = server.doems.doem("Restaurants")

    def names_in(notification):
        found = []
        for row in notification.result:
            node = row.scalar().node
            for child in doem.graph.children(node, "name"):
                found.append(doem.graph.value(child))
        return found

    print("Polling timeline (paper's Example 6.1):")
    for notification in client.inbox:
        names = names_in(notification)
        body = ", ".join(repr(n) for n in names) if names \
            else "(no changes of interest)"
        print(f"  t{notification.poll_index} = "
              f"{notification.polling_time}: {body}")

    expected = [2, 0, 1]
    actual = [len(n.result) for n in client.inbox]
    print(f"\nresult sizes {actual} "
          f"{'match' if actual == expected else 'DIFFER FROM'} "
          f"the paper's walkthrough {expected}")


if __name__ == "__main__":
    main()
