#!/usr/bin/env python3
"""Compare a benchmark artifact against its committed baseline.

Usage::

    python scripts/check_bench_baseline.py \
        benchmarks/artifacts/BENCH_parallel.json \
        benchmarks/baselines/BENCH_parallel_baseline.json

Every key present in the baseline must exist in the artifact with an
*identical* value -- the baseline deliberately contains only the
deterministic series (equivalence counters, workload parameters, and
planner counters), never wall times or machine-dependent pool
throughput.  On top of the baseline diff:

* the artifact's pool-utilization counters must show the worker pool
  actually ran (``submitted``/``completed`` > 0);
* the equivalence sweeps must report zero mismatches;
* every query must have compiled through ``repro.plan``, and **each** of
  the four rewrite rules must have fired at least once -- a single inert
  ``plan.rules_fired.*`` counter fails the check;
* on a machine with two or more cores (``wall.cpus``), the
  process-sharded pass must beat the serial pass outright:
  ``wall.ratio`` (sharded seconds / serial seconds) must be < 1.0.
  Single-core machines record the ratio but are not gated -- there is
  nothing for the shards to overlap on.

Exit status: 0 clean, 1 on any divergence (the CI bench-regression job
gates on it).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def fail(message: str) -> None:
    print(f"BASELINE CHECK FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> None:
    if len(argv) != 3:
        fail(f"usage: {argv[0]} <artifact.json> <baseline.json>")
    artifact_path, baseline_path = Path(argv[1]), Path(argv[2])
    if not artifact_path.exists():
        fail(f"artifact {artifact_path} not found (did the bench run?)")
    if not baseline_path.exists():
        fail(f"baseline {baseline_path} not found")
    artifact = json.loads(artifact_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    diverged = []
    for key, expected in sorted(baseline.items()):
        actual = artifact.get(key, "<missing>")
        if actual != expected:
            diverged.append(f"  {key}: baseline {expected!r}, got {actual!r}")
    if diverged:
        fail("deterministic series diverged from the committed baseline "
             "(update benchmarks/baselines/ only with an explanation):\n"
             + "\n".join(diverged))

    for counter in ("bench_parallel.pool.submitted",
                    "bench_parallel.pool.completed"):
        if artifact.get(counter, 0) <= 0:
            fail(f"{counter} is {artifact.get(counter)!r}; the worker pool "
                 f"never ran")
    for counter in ("bench_parallel.equivalence.sharded_mismatches",
                    "bench_parallel.equivalence.batch_mismatches",
                    "bench_parallel.equivalence.rules_mismatches"):
        if artifact.get(counter, "<missing>") != 0:
            fail(f"{counter} is {artifact.get(counter)!r}; parallel results "
                 f"diverged from serial")

    # The planner must actually be in the loop: every query compiles
    # through repro.plan, and every rewrite rule does work on this
    # workload -- one inert pass is a regression, not a detail.
    if artifact.get("bench_parallel.plan.compiled", 0) <= 0:
        fail("bench_parallel.plan.compiled is "
             f"{artifact.get('bench_parallel.plan.compiled')!r}; queries "
             f"bypassed the plan pipeline")
    for rule in ("virtual-at-expansion", "annotation-literal-pushdown",
                 "index-selection", "predicate-reorder"):
        counter = f"bench_parallel.plan.rules_fired.{rule}"
        if artifact.get(counter, 0) <= 0:
            fail(f"{counter} is {artifact.get(counter, '<missing>')!r}; "
                 f"the {rule} pass went inert on the probe workload")

    # Sharding must *pay* where it can: with >= 2 cores the process-pool
    # pass has real parallelism available, so sharded must beat serial.
    ratio = artifact.get("bench_parallel.wall.ratio")
    cpus = artifact.get("bench_parallel.wall.cpus", 1)
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_parallel.wall.ratio is {ratio!r}; the bench did not "
             f"record the sharded/serial wall-clock ratio")
    if cpus >= 2 and ratio >= 1.0:
        fail(f"sharded/serial ratio {ratio} >= 1.0 on a {cpus}-core "
             f"machine; process-pool sharding stopped paying for itself")

    note = (f"sharded/serial ratio {ratio} on {cpus} cpu(s)"
            + ("" if cpus >= 2 else " [not gated: single core]"))
    print(f"baseline check OK: {len(baseline)} series match, "
          f"pool ran {artifact['bench_parallel.pool.completed']} tasks, "
          + note)


if __name__ == "__main__":
    main(sys.argv)
