#!/usr/bin/env python3
"""Compare a benchmark artifact against its committed baseline.

Usage::

    python scripts/check_bench_baseline.py \
        benchmarks/artifacts/BENCH_parallel.json \
        benchmarks/baselines/BENCH_parallel_baseline.json

Every key present in the baseline must exist in the artifact with an
*identical* value -- the baseline deliberately contains only the
deterministic series (equivalence counters and workload parameters),
never wall times or machine-dependent pool throughput.  On top of the
baseline diff, the artifact's pool-utilization counters must show the
worker pool actually ran (``submitted``/``completed`` > 0) and the
equivalence sweep found no mismatches.

Exit status: 0 clean, 1 on any divergence (the CI bench-regression job
gates on it).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def fail(message: str) -> None:
    print(f"BASELINE CHECK FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> None:
    if len(argv) != 3:
        fail(f"usage: {argv[0]} <artifact.json> <baseline.json>")
    artifact_path, baseline_path = Path(argv[1]), Path(argv[2])
    if not artifact_path.exists():
        fail(f"artifact {artifact_path} not found (did the bench run?)")
    if not baseline_path.exists():
        fail(f"baseline {baseline_path} not found")
    artifact = json.loads(artifact_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    diverged = []
    for key, expected in sorted(baseline.items()):
        actual = artifact.get(key, "<missing>")
        if actual != expected:
            diverged.append(f"  {key}: baseline {expected!r}, got {actual!r}")
    if diverged:
        fail("deterministic series diverged from the committed baseline "
             "(update benchmarks/baselines/ only with an explanation):\n"
             + "\n".join(diverged))

    for counter in ("bench_parallel.pool.submitted",
                    "bench_parallel.pool.completed"):
        if artifact.get(counter, 0) <= 0:
            fail(f"{counter} is {artifact.get(counter)!r}; the worker pool "
                 f"never ran")
    for counter in ("bench_parallel.equivalence.sharded_mismatches",
                    "bench_parallel.equivalence.batch_mismatches"):
        if artifact.get(counter, "<missing>") != 0:
            fail(f"{counter} is {artifact.get(counter)!r}; parallel results "
                 f"diverged from serial")

    # The planner must actually be in the loop: every query compiles
    # through repro.plan, and at least one rewrite rule does work on
    # this workload.
    if artifact.get("bench_parallel.plan.compiled", 0) <= 0:
        fail("bench_parallel.plan.compiled is "
             f"{artifact.get('bench_parallel.plan.compiled')!r}; queries "
             f"bypassed the plan pipeline")
    rules_fired = sum(value for name, value in artifact.items()
                      if name.startswith("bench_parallel.plan.rules_fired.")
                      and isinstance(value, (int, float)))
    if rules_fired <= 0:
        fail("no bench_parallel.plan.rules_fired.* counter moved; the "
             "rewrite passes went inert")

    print(f"baseline check OK: {len(baseline)} series match, "
          f"pool ran {artifact['bench_parallel.pool.completed']} tasks")


if __name__ == "__main__":
    main(sys.argv)
