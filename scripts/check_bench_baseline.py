#!/usr/bin/env python3
"""Compare a benchmark artifact against its committed baseline.

Usage::

    python scripts/check_bench_baseline.py \
        benchmarks/artifacts/BENCH_parallel.json \
        benchmarks/baselines/BENCH_parallel_baseline.json

Every key present in the baseline must exist in the artifact with a
*matching* value -- the baseline deliberately contains only the
deterministic series (equivalence counters, workload parameters, and
planner counters), never wall times or machine-dependent pool
throughput.  Histogram-valued series compare as dicts key-by-key over
the baseline's keys, so an artifact may carry extra self-describing
fields (the bucket ``bounds`` added by ``Histogram.snapshot``) without
diverging.

On top of the baseline diff, family-specific invariants run for
whichever bench families the artifact contains:

* ``bench_parallel.*`` -- the worker pool actually ran
  (``submitted``/``completed`` > 0), the equivalence sweeps report zero
  mismatches, every query compiled through ``repro.plan`` with **each**
  rewrite rule firing at least once, and on a machine with two or more
  cores the process-sharded pass must beat the serial pass
  (``wall.ratio`` < 1.0; single-core machines record but are not gated);
* ``bench_obs.*`` -- the telemetry-overhead gate: the instrumented run
  must cost less than 5% over the disabled run
  (``overhead.ratio`` < 1.05), and the instrumented run must actually
  have produced events (``events.written`` > 0) -- a "free" telemetry
  layer that wrote nothing measured nothing;
* ``bench_analyze.*`` -- the EXPLAIN ANALYZE gate: an analyzed run must
  cost less than 5% over a plain run (``overhead.ratio`` < 1.05),
  return identical rows with an internally consistent stats tree
  (``equivalence.*`` == 0), and the sweeps must have landed in the
  query log (``queries.recorded`` > 0);
* ``bench_store.*`` -- the checkpointed time-travel gate: resolving
  ``Ot(D)`` by nearest-checkpoint load + bounded replay must cost less
  than half of replay-from-origin (``wall.ratio`` < 0.5, i.e. at least
  a 2x speedup), both postures must agree with the in-memory ground
  truth (``equivalence.snapshot_mismatches`` == 0), and the fast path
  must actually have served from checkpoints
  (``store.snapshots_from_checkpoint`` > 0);
* ``bench_timetravel.*`` -- the cross-time strategy gate: answering a
  narrow range query by merged TimestampIndex scans must beat full
  history replay (``wall.ratio`` < 1.0), all strategy postures must
  return identical rows (``equivalence.row_mismatches`` == 0), and the
  narrow probes must have produced rows
  (``workload.rows_narrow`` > 0) -- a strategy split that returned
  nothing measured nothing.

Exit status: 0 clean, 1 on any divergence (the CI bench-regression and
telemetry-overhead jobs gate on it).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

OBS_OVERHEAD_LIMIT = 1.05
ANALYZE_OVERHEAD_LIMIT = 1.05
STORE_SPEEDUP_LIMIT = 0.5


def fail(message: str) -> None:
    print(f"BASELINE CHECK FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _matches(expected, actual) -> bool:
    """Baseline subset match: dicts compare over the baseline's keys only.

    Scalars must be identical; a histogram snapshot in the artifact may
    grow new descriptive fields (e.g. ``bounds``) without breaking the
    committed baseline.
    """
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            return False
        return all(_matches(value, actual.get(key, "<missing>"))
                   for key, value in expected.items())
    return expected == actual


def _check_parallel(artifact: dict) -> str:
    for counter in ("bench_parallel.pool.submitted",
                    "bench_parallel.pool.completed"):
        if artifact.get(counter, 0) <= 0:
            fail(f"{counter} is {artifact.get(counter)!r}; the worker pool "
                 f"never ran")
    for counter in ("bench_parallel.equivalence.sharded_mismatches",
                    "bench_parallel.equivalence.batch_mismatches",
                    "bench_parallel.equivalence.rules_mismatches"):
        if artifact.get(counter, "<missing>") != 0:
            fail(f"{counter} is {artifact.get(counter)!r}; parallel results "
                 f"diverged from serial")

    # The planner must actually be in the loop: every query compiles
    # through repro.plan, and every rewrite rule does work on this
    # workload -- one inert pass is a regression, not a detail.
    if artifact.get("bench_parallel.plan.compiled", 0) <= 0:
        fail("bench_parallel.plan.compiled is "
             f"{artifact.get('bench_parallel.plan.compiled')!r}; queries "
             f"bypassed the plan pipeline")
    for rule in ("virtual-at-expansion", "annotation-literal-pushdown",
                 "index-selection", "predicate-reorder"):
        counter = f"bench_parallel.plan.rules_fired.{rule}"
        if artifact.get(counter, 0) <= 0:
            fail(f"{counter} is {artifact.get(counter, '<missing>')!r}; "
                 f"the {rule} pass went inert on the probe workload")

    # Sharding must *pay* where it can: with >= 2 cores the process-pool
    # pass has real parallelism available, so sharded must beat serial.
    ratio = artifact.get("bench_parallel.wall.ratio")
    cpus = artifact.get("bench_parallel.wall.cpus", 1)
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_parallel.wall.ratio is {ratio!r}; the bench did not "
             f"record the sharded/serial wall-clock ratio")
    if cpus >= 2 and ratio >= 1.0:
        fail(f"sharded/serial ratio {ratio} >= 1.0 on a {cpus}-core "
             f"machine; process-pool sharding stopped paying for itself")

    return (f"pool ran {artifact['bench_parallel.pool.completed']} tasks, "
            f"sharded/serial ratio {ratio} on {cpus} cpu(s)"
            + ("" if cpus >= 2 else " [not gated: single core]"))


def _check_obs(artifact: dict) -> str:
    ratio = artifact.get("bench_obs.overhead.ratio")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_obs.overhead.ratio is {ratio!r}; the bench did not "
             f"record the instrumented/disabled wall-clock ratio")
    if ratio >= OBS_OVERHEAD_LIMIT:
        fail(f"telemetry overhead ratio {ratio} >= {OBS_OVERHEAD_LIMIT} "
             f"(instrumented/disabled); the event log or metrics hot "
             f"path got too expensive")
    written = artifact.get("bench_obs.events.written", 0)
    if written <= 0:
        fail(f"bench_obs.events.written is {written!r}; the instrumented "
             f"pass produced no events, so the overhead measurement is "
             f"vacuous")
    return (f"telemetry overhead ratio {ratio} < {OBS_OVERHEAD_LIMIT}, "
            f"{written} event(s) written")


def _check_analyze(artifact: dict) -> str:
    ratio = artifact.get("bench_analyze.overhead.ratio")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_analyze.overhead.ratio is {ratio!r}; the bench did "
             f"not record the analyze/plain wall-clock ratio")
    if ratio >= ANALYZE_OVERHEAD_LIMIT:
        fail(f"ANALYZE overhead ratio {ratio} >= {ANALYZE_OVERHEAD_LIMIT} "
             f"(analyze/plain); the per-operator accounting got too "
             f"expensive")
    for counter in ("bench_analyze.equivalence.row_mismatches",
                    "bench_analyze.equivalence.consistency_violations"):
        if artifact.get(counter, "<missing>") != 0:
            fail(f"{counter} is {artifact.get(counter)!r}; ANALYZE "
                 f"perturbed results or collected an inconsistent tree")
    recorded = artifact.get("bench_analyze.queries.recorded", 0)
    if recorded <= 0:
        fail(f"bench_analyze.queries.recorded is {recorded!r}; no query "
             f"reached the query log, so the overhead measurement is "
             f"vacuous")
    return (f"ANALYZE overhead ratio {ratio} < {ANALYZE_OVERHEAD_LIMIT}, "
            f"{recorded} query-log record(s)")


def _check_store(artifact: dict) -> str:
    ratio = artifact.get("bench_store.wall.ratio")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_store.wall.ratio is {ratio!r}; the bench did not "
             f"record the checkpointed/origin-replay wall-clock ratio")
    if ratio >= STORE_SPEEDUP_LIMIT:
        fail(f"checkpointed/origin-replay ratio {ratio} >= "
             f"{STORE_SPEEDUP_LIMIT}; nearest-checkpoint resolution "
             f"stopped beating full replay by 2x")
    mismatches = artifact.get("bench_store.equivalence.snapshot_mismatches",
                              "<missing>")
    if mismatches != 0:
        fail(f"bench_store.equivalence.snapshot_mismatches is "
             f"{mismatches!r}; the checkpoint fast path changed Ot(D)")
    served = artifact.get("bench_store.store.snapshots_from_checkpoint", 0)
    if served <= 0:
        fail(f"bench_store.store.snapshots_from_checkpoint is {served!r}; "
             f"no probe was served from a checkpoint, so the speedup "
             f"measurement is vacuous")
    return (f"checkpointed Ot(D) ratio {ratio} < {STORE_SPEEDUP_LIMIT}, "
            f"{served} probe(s) served from checkpoints")


def _check_timetravel(artifact: dict) -> str:
    ratio = artifact.get("bench_timetravel.wall.ratio")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        fail(f"bench_timetravel.wall.ratio is {ratio!r}; the bench did "
             f"not record the index-scan/full-replay wall-clock ratio")
    if ratio >= 1.0:
        fail(f"narrow-range index/replay ratio {ratio} >= 1.0; the "
             f"TimestampIndex scan stopped beating full history replay, "
             f"so the planner's narrow-range strategy pick is wrong")
    mismatches = artifact.get("bench_timetravel.equivalence.row_mismatches",
                              "<missing>")
    if mismatches != 0:
        fail(f"bench_timetravel.equivalence.row_mismatches is "
             f"{mismatches!r}; a range strategy changed query rows")
    rows = artifact.get("bench_timetravel.workload.rows_narrow", 0)
    if rows <= 0:
        fail(f"bench_timetravel.workload.rows_narrow is {rows!r}; the "
             f"narrow probes returned nothing, so the strategy "
             f"measurement is vacuous")
    return (f"narrow-range index/replay ratio {ratio} < 1.0 over "
            f"{rows} row(s)")


def main(argv: list[str]) -> None:
    if len(argv) != 3:
        fail(f"usage: {argv[0]} <artifact.json> <baseline.json>")
    artifact_path, baseline_path = Path(argv[1]), Path(argv[2])
    if not artifact_path.exists():
        fail(f"artifact {artifact_path} not found (did the bench run?)")
    if not baseline_path.exists():
        fail(f"baseline {baseline_path} not found")
    artifact = json.loads(artifact_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    diverged = []
    for key, expected in sorted(baseline.items()):
        actual = artifact.get(key, "<missing>")
        if not _matches(expected, actual):
            diverged.append(f"  {key}: baseline {expected!r}, got {actual!r}")
    if diverged:
        fail("deterministic series diverged from the committed baseline "
             "(update benchmarks/baselines/ only with an explanation):\n"
             + "\n".join(diverged))

    notes = []
    if "bench_parallel.wall.ratio" in artifact:
        notes.append(_check_parallel(artifact))
    if "bench_obs.overhead.ratio" in artifact:
        notes.append(_check_obs(artifact))
    if "bench_analyze.overhead.ratio" in artifact:
        notes.append(_check_analyze(artifact))
    if "bench_store.wall.ratio" in artifact:
        notes.append(_check_store(artifact))
    if "bench_timetravel.wall.ratio" in artifact:
        notes.append(_check_timetravel(artifact))
    if not notes:
        fail("artifact contains no recognized bench family "
             "(bench_parallel.*, bench_obs.*, bench_analyze.*, "
             "bench_store.*, or bench_timetravel.*)")

    print(f"baseline check OK: {len(baseline)} series match, "
          + "; ".join(notes))


if __name__ == "__main__":
    main(sys.argv)
