#!/usr/bin/env python3
"""Kill a live store writer mid-stream, reopen, fsck: nothing acked is lost.

The CI ``store-durability`` lane's process-level test (the in-process
fault injections live in ``tests/store/test_recovery.py``).  A child
process appends the demo history to a change-log store with the
``"always"`` fsync policy, acknowledging each append on stdout *after*
it is durable.  The parent SIGKILLs the child mid-write -- no atexit, no
flush, no lock release -- then:

1. steals the dead child's lock (the stale-pid path a crashed CLI
   one-shot exercises),
2. runs ``fsck`` and repairs whatever the kill tore,
3. verifies every acknowledged change set survived, and that every
   surviving ``Ot(D)`` equals the in-memory ground truth,
4. shears the recovered log's tail by hand (a torn in-flight frame) and
   proves recovery converges again.

Exit status 0 means the durability contract held.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

KILL_AFTER_ACKS = 6  # SIGKILL the child once this many appends are durable

CHILD_SOURCE = """
import sys
sys.path.insert(0, {src!r})
from repro.sources.generators import demo_world
from repro.store import ChangeLogStore

db, history = demo_world(days=60)
store = ChangeLogStore({root!r}, fsync_policy="always")
log = store.create("demo", db)
for index, (when, change_set) in enumerate(history.entries()):
    log.append(when, change_set)
    print(f"ACK {{index}}", flush=True)
print("DONE", flush=True)
"""


def fail(message: str) -> None:
    print(f"CRASH ROUNDTRIP FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def run_child_and_kill(root: Path) -> int:
    """Start the writer, kill it after KILL_AFTER_ACKS acks; return acks."""
    child = subprocess.Popen(
        [sys.executable, "-c",
         CHILD_SOURCE.format(src=str(REPO_ROOT / "src"), root=str(root))],
        stdout=subprocess.PIPE, text=True)
    acked = -1
    try:
        for line in child.stdout:
            if line.startswith("ACK "):
                acked = int(line.split()[1])
            if acked + 1 >= KILL_AFTER_ACKS:
                os.kill(child.pid, signal.SIGKILL)
                break
            if line.startswith("DONE"):
                fail("child finished before the kill; raise the history "
                     "length")
    finally:
        child.stdout.close()
        child.wait()
    if acked < 0:
        fail("child never acknowledged a durable append")
    print(f"killed writer pid {child.pid} after {acked + 1} durable "
          f"append(s)")
    return acked


def verify(root: Path, acked: int) -> None:
    from repro.sources.generators import demo_world
    from repro.store import ChangeLogStore

    db, history = demo_world(days=60)

    # The dead child's LOCK names a pid that no longer exists; opening
    # rw must steal it, truncate any torn tail, and serve reads.
    with ChangeLogStore(root) as store:
        report = store.fsck(repair=True)
        if not report["ok"]:
            fail(f"fsck could not repair the killed store: {report}")
        log = store.log("demo")
        survived = len(log)
        if survived < acked + 1:
            fail(f"only {survived} change set(s) survived, but {acked + 1} "
                 f"were acknowledged as durable before the kill")
        expected_times = history.timestamps()[:survived]
        if log.timestamps() != expected_times:
            fail("recovered timestamps diverge from the written prefix")
        for when in expected_times:
            if not log.snapshot_at(when).same_as(
                    history.snapshot_at(db, when)):
                fail(f"Ot(D) at {when} diverges after recovery")
    print(f"recovered {survived} change set(s), every Ot(D) exact "
          f"({acked + 1} were acked)")

    # Round two: shear the tail mid-frame (the torn write SIGKILL alone
    # rarely produces, since acked frames are already on disk).
    segment = sorted((root / "demo").glob("seg-*.log"))[-1]
    segment.write_bytes(segment.read_bytes()[:-5])
    with ChangeLogStore(root) as store:
        report = store.fsck(repair=True)
        if not report["ok"]:
            fail(f"fsck could not repair the sheared tail: {report}")
        log = store.log("demo")
        survivors = log.timestamps()
        if survivors != history.timestamps()[:len(survivors)]:
            fail("post-shear recovery is not a prefix of the history")
        if len(survivors) < survived - 1:
            fail(f"shearing one frame lost {survived - len(survivors)} "
                 f"record(s)")
    print(f"torn-tail repair kept {len(survivors)} change set(s) "
          f"(one frame sheared)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="store-crash-") as scratch:
        root = Path(scratch) / "store"
        started = time.perf_counter()
        acked = run_child_and_kill(root)
        verify(root, acked)
        elapsed = time.perf_counter() - started
        print(f"crash roundtrip OK in {elapsed:.2f}s")


if __name__ == "__main__":
    main()
