"""Robustness and edge-case tests across the stack.

Unusual-but-legal inputs: unicode labels and values, deep chains, wide
fan-out, empty everything, duplicate-heavy data, and hostile query text.
"""

import pytest

from repro import (
    COMPLEX,
    ChorelEngine,
    DOEMDatabase,
    LexError,
    LorelEngine,
    OEMDatabase,
    OEMHistory,
    ParseError,
    UpdNode,
    build_doem,
    current_snapshot,
    dumps,
    encode_doem,
    decode_doem,
    loads,
    oem_diff,
)
from repro.diff.oemdiff import apply_diff


class TestUnicode:
    def make_db(self):
        db = OEMDatabase(root="r")
        db.create_node("n1", "héllo wörld é世界")
        db.add_arc("r", "grüße", "n1")
        db.create_node("n2", "\U0001F35C noodles")
        db.add_arc("r", "emoji label ✓", "n2")
        return db

    def test_serializer_round_trip(self):
        db = self.make_db()
        assert loads(dumps(db)).same_as(db)

    def test_query_over_unicode(self):
        db = self.make_db()
        engine = LorelEngine(db, name="r")
        result = engine.run('select V from r."grüße" V')
        assert len(result) == 1

    def test_like_on_unicode(self):
        db = self.make_db()
        engine = LorelEngine(db, name="r")
        result = engine.run('select V from r.# V where V like "%noodles%"')
        assert len(result) == 1

    def test_diff_over_unicode(self):
        old = self.make_db()
        new = self.make_db()
        new.update_value("n1", "geändert")
        changes = oem_diff(old, new)
        assert apply_diff(old, changes).isomorphic_to(new)


class TestExtremeShapes:
    def test_deep_chain_serializes(self):
        db = OEMDatabase(root="r")
        previous = "r"
        depth = 3000
        for index in range(depth):
            node = db.create_node(
                f"n{index}", COMPLEX if index < depth - 1 else 0)
            db.add_arc(previous, "next", node)
            previous = node
        restored = loads(dumps(db))
        assert restored.same_as(db)

    def test_wide_fanout(self):
        db = OEMDatabase(root="r")
        for index in range(2000):
            db.create_node(f"n{index}", index)
            db.add_arc("r", "item", f"n{index}")
        engine = LorelEngine(db, name="r")
        result = engine.run("select V from r.item V where V = 1234")
        assert len(result) == 1
        assert loads(dumps(db)).same_as(db)

    def test_empty_database(self):
        db = OEMDatabase(root="only")
        assert loads(dumps(db)).same_as(db)
        engine = LorelEngine(db, name="only")
        assert len(engine.run("select only.anything")) == 0
        doem = DOEMDatabase(db.copy())
        assert decode_doem(encode_doem(doem)).same_as(doem)

    def test_empty_history_doem(self):
        db = OEMDatabase(root="r")
        doem = build_doem(db, OEMHistory())
        assert current_snapshot(doem).same_as(db)
        engine = ChorelEngine(doem, name="r")
        assert len(engine.run("select r.#<cre at T>")) == 0

    def test_many_updates_one_node(self):
        db = OEMDatabase(root="r")
        db.create_node("x", 0)
        db.add_arc("r", "v", "x")
        history = OEMHistory()
        from repro import parse_timestamp
        when = parse_timestamp("1Jan97")
        for index in range(300):
            history.append(when.plus(days=index), [UpdNode("x", index + 1)])
        doem = build_doem(db, history)
        assert doem.graph.value("x") == 300
        triples = doem.upd_triples("x")
        assert len(triples) == 300
        assert triples[0][1] == 0 and triples[-1][2] == 300
        # encoding with 300 upd records still round-trips
        assert decode_doem(encode_doem(doem)).same_as(doem)

    def test_duplicate_values_everywhere(self):
        db = OEMDatabase(root="r")
        for index in range(50):
            db.create_node(f"n{index}", "same")
            db.add_arc("r", "v", f"n{index}")
        engine = LorelEngine(db, name="r")
        result = engine.run('select V from r.v V where V = "same"')
        assert len(result) == 50  # distinct objects, equal values

    def test_label_equal_to_keyword(self):
        db = OEMDatabase(root="r")
        db.create_node("x", 1)
        db.add_arc("r", "select", "x")   # a label named 'select'
        engine = LorelEngine(db, name="r")
        result = engine.run('select V from r."select" V')
        assert len(result) == 1


class TestHostileQueryText:
    @pytest.mark.parametrize("text", [
        "", "   ", "select", "select from", "select a..b",
        "select a where", "select a where x ==", "select a.<>b",
        "select <add>", "select a.(b", "select a.b<upd at>",
        'select a where b like 5',
    ])
    def test_bad_queries_raise_cleanly(self, guide_db, text):
        engine = LorelEngine(guide_db, name="guide")
        with pytest.raises((ParseError, LexError)):
            engine.run(text)

    def test_enormous_query_ok(self, guide_db):
        engine = LorelEngine(guide_db, name="guide")
        disjuncts = " or ".join(
            f"guide.restaurant.price = {index}" for index in range(200))
        result = engine.run(f"select guide.restaurant where {disjuncts}")
        assert result.objects() == ["r1"]  # price 10 is in [0, 200)

    def test_deep_path_query(self, guide_db):
        engine = LorelEngine(guide_db, name="guide")
        path = "guide" + ".parking.nearby-eats" * 30 + ".name"
        result = engine.run(f"select N from {path} N")
        assert len(result) == 0  # root has no parking arc
