"""Tests for the Lorel update language (updates compile to change ops)."""

import pytest

from repro import AddArc, COMPLEX, CreNode, QueryError, RemArc, UpdNode
from repro.lorel.update import parse_update, plan_update
from repro.errors import ParseError


class TestParsing:
    def test_update(self):
        statement = parse_update('update guide.restaurant.price := 25')
        assert statement.kind == "update"
        assert statement.value == 25

    def test_insert_atomic(self):
        statement = parse_update('insert guide.restaurant.comment := "good"')
        assert statement.kind == "insert"
        assert statement.value == "good"

    def test_remove(self):
        statement = parse_update(
            'remove guide.restaurant.parking '
            'where guide.restaurant.name = "Janta"')
        assert statement.kind == "remove"
        assert statement.where is not None

    def test_link(self):
        statement = parse_update(
            "link guide.restaurant.annex := PATH guide.restaurant")
        assert statement.kind == "link"
        assert statement.target_path is not None

    def test_missing_assignment_rejected(self):
        with pytest.raises(ParseError):
            parse_update("update guide.x 25")

    def test_unknown_verb_rejected(self):
        with pytest.raises(ParseError):
            parse_update("destroy guide.x")

    def test_brace_spec_rejected_in_text(self):
        # Complex specs are not textual: pass a mapping to plan_update.
        with pytest.raises(QueryError):
            parse_update("insert guide.r := { name: 1 }")


class TestPlanning:
    def test_update_targets_by_where(self, figure3_db):
        changes = plan_update(
            figure3_db,
            'update guide.restaurant.price := 25 '
            'where guide.restaurant.name = "Janta"')
        assert changes.operations() == (UpdNode("pr2", 25),)

    def test_update_all_matches(self, figure3_db):
        changes = plan_update(figure3_db,
                              "update guide.restaurant.price := 5")
        updated = {op.node for op in changes.filter(UpdNode)}
        assert updated == {"n1", "pr2"}

    def test_insert_atomic(self, figure3_db):
        changes = plan_update(
            figure3_db,
            'insert guide.restaurant.comment := "closed mondays" '
            'where guide.restaurant.name = "Hakata"')
        assert len(changes.filter(CreNode)) == 1
        assert len(changes.filter(AddArc)) == 1
        parent = changes.filter(AddArc)[0].source
        assert parent == "n2"  # Hakata

    def test_insert_complex_mapping(self, figure3_db):
        changes = plan_update(
            figure3_db,
            parse_update('insert guide.restaurant := 0'),
            value={"name": "Zibibbo", "price": 30,
                   "address": {"street": "Kipling"}})
        changes.apply_to(figure3_db)
        found = [node for node in figure3_db.nodes()
                 if figure3_db.value(node) == "Zibibbo"]
        assert len(found) == 1
        figure3_db.check()

    def test_remove(self, figure3_db):
        changes = plan_update(
            figure3_db,
            'remove guide.restaurant.parking '
            'where guide.restaurant.name = "Bangkok Cuisine"')
        assert changes.operations() == (RemArc("r1", "parking", "n7"),)

    def test_link(self, figure3_db):
        changes = plan_update(
            figure3_db,
            'link guide.restaurant.sister := PATH guide.restaurant '
            'where guide.restaurant.name = "Hakata"')
        # Hakata gets a sister arc to itself (single match on both sides).
        assert changes.operations() == (AddArc("n2", "sister", "n2"),)

    def test_plan_then_apply_round_trip(self, figure3_db):
        changes = plan_update(
            figure3_db,
            'update guide.restaurant.price := 99 '
            'where guide.restaurant.name = "Bangkok Cuisine"')
        changes.apply_to(figure3_db)
        assert figure3_db.value("n1") == 99

    def test_plan_into_doem(self, guide_db, guide_history):
        """Planned updates fold into a DOEM database like any change set."""
        from repro import build_doem
        from repro.doem.build import apply_change_set
        doem = build_doem(guide_db, guide_history)
        from repro.doem.snapshot import current_snapshot
        snapshot = current_snapshot(doem)
        changes = plan_update(
            snapshot,
            'update guide.restaurant.price := 30 '
            'where guide.restaurant.name = "Bangkok Cuisine"')
        apply_change_set(doem, "9Jan97", changes)
        assert doem.graph.value("n1") == 30
        assert len(doem.node_annotations("n1")) == 2  # two upd annotations


class TestPlanningErrors:
    def test_update_needs_value(self, figure3_db):
        statement = parse_update("update guide.restaurant.price := 1")
        object.__setattr__(statement, "value", None)
        with pytest.raises(QueryError):
            plan_update(figure3_db, statement)

    def test_wildcard_final_step_rejected(self, figure3_db):
        with pytest.raises(QueryError):
            plan_update(figure3_db, "update guide.restaurant.# := 1")

    def test_update_with_mapping_rejected(self, figure3_db):
        statement = parse_update("update guide.restaurant.price := 1")
        with pytest.raises(QueryError):
            plan_update(figure3_db, statement, value={"nested": 1})

    def test_empty_path_rejected(self, figure3_db):
        from repro.lorel.ast import PathExpr
        from repro.lorel.update import UpdateStatement
        statement = UpdateStatement("update", PathExpr("guide", ()), 1)
        with pytest.raises(QueryError):
            plan_update(figure3_db, statement)
