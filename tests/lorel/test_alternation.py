"""Tests for label alternation ``(a|b)`` in path expressions."""

import pytest

from repro import COMPLEX, LorelEngine, OEMDatabase, parse_query
from repro.lorel.ast import PathStep


@pytest.fixture
def venues():
    db = OEMDatabase(root="g")
    for key, kind, name in [("r1", "restaurant", "Janta"),
                            ("c1", "cafe", "Blue Bottle"),
                            ("b1", "bar", "Antonio's Nut House")]:
        node = db.create_node(key, COMPLEX)
        db.add_arc("g", kind, node)
        atom = db.create_node(f"{key}n", name)
        db.add_arc(node, "name", atom)
    return db


class TestParsing:
    def test_alternation_label(self):
        query = parse_query("select g.(restaurant|cafe).name")
        step = query.select[0].expr.steps[0]
        assert step.is_alternation
        assert step.alternatives == ("restaurant", "cafe")

    def test_three_way(self):
        query = parse_query("select g.(a|b|c)")
        assert query.select[0].expr.steps[0].alternatives == ("a", "b", "c")

    def test_round_trip(self):
        text = "select g.(restaurant|cafe).name"
        query = parse_query(text)
        assert parse_query(str(query)) == query

    def test_bad_separator(self):
        from repro import ParseError
        with pytest.raises(ParseError):
            parse_query("select g.(a,b)")

    def test_condition_parens_still_work(self):
        query = parse_query("select x where (a = 1 or b = 2) and c = 3")
        assert query.where is not None

    def test_plain_step_properties(self):
        step = PathStep("name")
        assert not step.is_alternation
        assert step.alternatives == ("name",)


class TestEvaluation:
    def test_two_way_match(self, venues):
        engine = LorelEngine(venues, name="g")
        result = engine.run("select N from g.(restaurant|cafe).name N")
        values = sorted(venues.value(node) for node in result.objects())
        assert values == ["Blue Bottle", "Janta"]

    def test_no_duplicate_on_overlap(self, venues):
        engine = LorelEngine(venues, name="g")
        result = engine.run("select V from g.(restaurant|restaurant) V")
        assert len(result) == 1

    def test_with_where(self, venues):
        engine = LorelEngine(venues, name="g")
        result = engine.run(
            'select V from g.(cafe|bar) V where V.name like "%Nut%"')
        assert result.objects() == ["b1"]

    def test_alternation_with_node_annotation(self, guide_doem):
        from repro import ChorelEngine
        engine = ChorelEngine(guide_doem, name="guide")
        result = engine.run(
            "select guide.restaurant.(comment|name)<cre at T> "
            "where T > 3Jan97")
        assert [row.scalar().node for row in result] == ["n5"]

    def test_alternation_with_node_annotation_translates(self, guide_doem):
        from repro import TranslatingChorelEngine
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        result = engine.run(
            "select guide.restaurant.(comment|name)<cre at T> "
            "where T > 3Jan97")
        assert [row.scalar().node for row in result] == ["n5"]

    def test_arc_annotation_on_alternation_native_ok(self, guide_doem):
        from repro import ChorelEngine
        engine = ChorelEngine(guide_doem, name="guide")
        result = engine.run("select guide.<add at T>(restaurant|cafe)")
        assert [row.scalar().node for row in result] == ["n2"]

    def test_arc_annotation_on_alternation_translation_rejected(
            self, guide_doem):
        from repro import TranslatingChorelEngine, TranslationError
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        with pytest.raises(TranslationError):
            engine.run("select guide.<add at T>(restaurant|cafe)")
