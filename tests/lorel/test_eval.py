"""Tests for Lorel evaluation over the Figure 3 guide database."""

import pytest

from repro import COMPLEX, EvaluationError, LorelEngine, OEMDatabase


@pytest.fixture
def engine(figure3_db):
    return LorelEngine(figure3_db, name="guide")


def names_of(db, result):
    """Values of the name children of result objects (sorted)."""
    out = []
    for node in result.objects():
        for child in db.children(node, "name"):
            out.append(db.value(child))
    return sorted(out)


class TestExample41:
    """Lorel's forgiving coercion (Example 4.1) on the Figure 3 data."""

    def test_price_filter(self, engine, figure3_db):
        result = engine.run(
            "select guide.restaurant where guide.restaurant.price < 20.5")
        # int 20 coerces and passes; "moderate" fails quietly; Hakata has
        # no price at all: only Bangkok Cuisine qualifies.
        assert names_of(figure3_db, result) == ["Bangkok Cuisine"]

    def test_price_filter_catches_nothing_above(self, engine):
        result = engine.run(
            "select guide.restaurant where guide.restaurant.price < 5")
        assert len(result) == 0

    def test_string_comparison(self, engine, figure3_db):
        result = engine.run(
            'select guide.restaurant where guide.restaurant.price = "moderate"')
        assert names_of(figure3_db, result) == ["Janta"]


class TestPrefixUnification:
    def test_select_and_where_share_restaurant(self, engine, figure3_db):
        # Both paths must range over the SAME restaurant.
        result = engine.run(
            'select guide.restaurant.name '
            'where guide.restaurant.price = "moderate"')
        values = [figure3_db.value(node) for node in result.objects()]
        assert values == ["Janta"]

    def test_from_paths_share_prefix(self, engine):
        # Example 4.4's pattern: two from paths over one restaurant var.
        result = engine.run(
            "select N from guide.restaurant.price P, "
            "guide.restaurant.name N where P < 20.5")
        assert len(result) == 1

    def test_explicit_distinct_variables_stay_distinct(self, engine):
        result = engine.run(
            "select A, B from guide.restaurant A, guide.restaurant B")
        # 3 restaurants -> 9 ordered pairs.
        assert len(result) == 9

    def test_where_only_prefix_unifies_with_select(self, engine, figure3_db):
        result = engine.run(
            "select guide.restaurant where guide.restaurant.comment")
        assert names_of(figure3_db, result) == ["Hakata"]


class TestPathFeatures:
    def test_wildcard_reaches_deep_values(self, engine):
        result = engine.run('select V from guide.# V where V = "Palo Alto"')
        assert len(result) == 1

    def test_wildcard_matches_zero_steps(self, engine):
        result = engine.run("select V from guide.restaurant.# V, "
                            "guide.restaurant.name N "
                            'where V = "Hakata" and N = "Hakata"')
        # '#' of length 1 (name) reaches the atom; the atom also equals N.
        assert len(result) == 1

    def test_label_pattern(self, engine, figure3_db):
        result = engine.run("select X from guide.restaurant.price% X")
        values = sorted(str(figure3_db.value(node))
                        for node in result.objects())
        assert values == ["20", "moderate"]

    def test_pattern_no_match(self, engine):
        assert len(engine.run("select X from guide.zzz% X")) == 0

    def test_cycle_safe_wildcard(self, engine):
        # The guide graph is cyclic (parking/nearby-eats); '#' must stop.
        result = engine.run("select X from guide.# X")
        assert len(result) > 0

    def test_like_on_path(self, engine, figure3_db):
        result = engine.run('select N from guide.restaurant.name N '
                            'where N like "%a%"')
        values = sorted(figure3_db.value(node) for node in result.objects())
        assert values == ["Bangkok Cuisine", "Hakata", "Janta"]

    def test_path_through_shared_object(self, engine, figure3_db):
        # n7 is reachable from r1 via parking; nearby-eats cycles back.
        result = engine.run(
            "select N from guide.restaurant.parking.nearby-eats.name N")
        values = [figure3_db.value(node) for node in result.objects()]
        assert values == ["Bangkok Cuisine"]


class TestConditions:
    def test_and(self, engine):
        result = engine.run(
            'select guide.restaurant where guide.restaurant.price < 100 '
            'and guide.restaurant.cuisine = "Indian"')
        assert len(result) == 0  # Janta has a string price (fails < 100)

    def test_or(self, engine, figure3_db):
        result = engine.run(
            'select guide.restaurant where guide.restaurant.price < 100 '
            'or guide.restaurant.cuisine = "Indian"')
        assert names_of(figure3_db, result) == ["Bangkok Cuisine", "Janta"]

    def test_not(self, engine, figure3_db):
        result = engine.run(
            "select guide.restaurant where not guide.restaurant.price")
        assert names_of(figure3_db, result) == ["Hakata"]

    def test_exists(self, engine, figure3_db):
        result = engine.run(
            "select R from guide.restaurant R where "
            'exists C in R.address.city : C = "Palo Alto"')
        assert names_of(figure3_db, result) == ["Janta"]

    def test_bare_path_existence(self, engine, figure3_db):
        result = engine.run(
            "select guide.restaurant where guide.restaurant.parking")
        assert names_of(figure3_db, result) == ["Bangkok Cuisine"]

    def test_comparison_between_two_paths(self, engine, figure3_db):
        db = figure3_db
        result = engine.run(
            "select A from guide.restaurant A, guide.restaurant B "
            "where A.price < B.price")
        # only numeric 20 vs "moderate" could compare; strings don't
        # coerce -> no pair satisfies.
        assert len(result) == 0

    def test_variable_flow_across_and(self, engine):
        # A variable bound in the left conjunct is visible on the right.
        result = engine.run(
            "select R from guide.restaurant R, R.price P "
            "where P = 20 and P < 30")
        assert len(result) == 1


class TestResults:
    def test_duplicate_rows_collapse(self, engine):
        # Janta + Bangkok share the parking object: one row, not two.
        result = engine.run("select P from guide.restaurant.parking P")
        assert len(result) == 1

    def test_default_labels(self, engine):
        result = engine.run("select guide.restaurant.name")
        assert result.first().labels() == ["name"]

    def test_as_label_override(self, engine):
        result = engine.run("select N as nm from guide.restaurant.name N")
        assert result.first().labels() == ["nm"]

    def test_row_accessors(self, engine):
        row = engine.run("select guide.restaurant.name").first()
        assert row.get("name") is row["name"]
        assert row.get("missing", 42) == 42
        with pytest.raises(KeyError):
            row["missing"]

    def test_result_as_oem_single_item(self, engine, figure3_db):
        result = engine.run("select guide.restaurant")
        answer = result.as_oem(figure3_db)
        answer.check()
        assert len(list(answer.children(answer.root, "restaurant"))) == 3
        # Subobjects came along recursively.
        assert any(answer.value(node) == "Bangkok Cuisine"
                   for node in answer.nodes())

    def test_result_as_oem_multi_item(self, engine, figure3_db):
        result = engine.run(
            "select N, P from guide.restaurant R, R.name N, R.price P")
        answer = result.as_oem(figure3_db)
        rows = list(answer.children(answer.root, "row"))
        assert len(rows) == len(result)

    def test_as_oem_preserves_cycles(self, engine, figure3_db):
        result = engine.run("select guide.restaurant")
        answer = result.as_oem(figure3_db)
        # The parking cycle must survive the copy.
        assert any(arc.label == "nearby-eats" for arc in answer.arcs())


class TestErrors:
    def test_unknown_root_name(self, engine):
        with pytest.raises(EvaluationError):
            engine.run("select nosuch.restaurant")

    def test_unbound_select_variable(self, engine):
        with pytest.raises(EvaluationError):
            engine.run("select Z from guide.restaurant R")

    def test_scalar_cannot_start_path(self):
        db = OEMDatabase(root="r")
        db.create_node("x", 1)
        db.add_arc("r", "v", "x")
        engine = LorelEngine(db)
        # V is an object (atomic node) -- paths from atomic nodes just
        # yield nothing rather than erroring.
        result = engine.run("select V from r.v V where V.deeper = 1")
        assert len(result) == 0

    def test_register_name(self, figure3_db):
        engine = LorelEngine(figure3_db, name="guide")
        engine.register_name("bangkok", "r1")
        result = engine.run("select N from bangkok.name N")
        assert len(result) == 1
