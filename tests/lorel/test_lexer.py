"""Tests for the Lorel/Chorel tokenizer."""

import pytest

from repro import LexError, parse_timestamp
from repro.lorel.lexer import tokenize
from repro.lorel.tokens import TokenKind


def kinds(text):
    return [token.kind for token in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [token.text for token in tokenize(text)][:-1]


class TestBasics:
    def test_keywords_case_insensitive(self):
        for variant in ["select", "SELECT", "Select"]:
            token = tokenize(variant)[0]
            assert token.kind is TokenKind.KEYWORD
            assert token.value == "select"

    def test_identifiers_with_dashes(self):
        token = tokenize("nearby-eats")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "nearby-eats"

    def test_amp_identifiers(self):
        token = tokenize("&price-history")[0]
        assert token.kind is TokenKind.AMP_IDENT
        assert token.text == "&price-history"

    def test_stray_ampersand(self):
        with pytest.raises(LexError):
            tokenize("& illegal")

    def test_numbers(self):
        tokens = tokenize("42 20.5 1e3 -7 -2.5")
        values = [token.value for token in tokens[:-1]]
        assert values == [42, 20.5, 1000.0, -7, -2.5]
        assert tokens[0].kind is TokenKind.INT
        assert tokens[1].kind is TokenKind.REAL

    def test_strings_with_escapes(self):
        token = tokenize(r'"a\"b\n"')[0]
        assert token.value == 'a"b\n'

    def test_single_quoted_strings(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_comments_skipped(self):
        assert kinds("select -- a comment\n x") == \
            [TokenKind.KEYWORD, TokenKind.IDENT]

    def test_punctuation(self):
        assert kinds(". , : ( ) #") == [
            TokenKind.DOT, TokenKind.COMMA, TokenKind.COLON,
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.HASH]


class TestTimestampLiterals:
    def test_paper_style(self):
        token = tokenize("4Jan97")[0]
        assert token.kind is TokenKind.TIMESTAMP
        assert token.value == parse_timestamp("4Jan97")

    def test_iso_style(self):
        token = tokenize("1997-01-04")[0]
        assert token.kind is TokenKind.TIMESTAMP
        assert token.value == parse_timestamp("4Jan97")

    def test_in_context(self):
        tokens = tokenize("where T < 4Jan97")
        assert tokens[-2].kind is TokenKind.TIMESTAMP

    def test_number_not_mistaken(self):
        token = tokenize("1997")[0]
        assert token.kind is TokenKind.INT

    def test_malformed_mixed_literal(self):
        with pytest.raises(LexError):
            tokenize("12abc")


class TestTimeVars:
    def test_basic(self):
        token = tokenize("t[-1]")[0]
        assert token.kind is TokenKind.TIMEVAR
        assert token.value == -1

    def test_zero_and_deep(self):
        assert tokenize("t[0]")[0].value == 0
        assert tokenize("t[-12]")[0].value == -12

    def test_plain_t_is_ident(self):
        token = tokenize("t ")[0]
        assert token.kind is TokenKind.IDENT


class TestAngleBrackets:
    def test_annotation_opener(self):
        tokens = tokenize("<add at T>")
        assert tokens[0].kind is TokenKind.LANGLE
        assert tokens[-2].kind is TokenKind.RANGLE

    def test_comparison_less_than(self):
        tokens = tokenize("T < 5")
        assert tokens[1].kind is TokenKind.OP
        assert tokens[1].text == "<"

    def test_leq_geq_neq(self):
        tokens = tokenize("a <= b >= c <> d != e == f = g")
        ops = [token.text for token in tokens
               if token.kind is TokenKind.OP]
        assert ops == ["<=", ">=", "<>", "!=", "==", "="]

    def test_greater_than_is_rangle(self):
        # '>' is always RANGLE lexically; the parser contextualizes it.
        tokens = tokenize("NV > 15")
        assert tokens[1].kind is TokenKind.RANGLE

    def test_upd_annotation_opener(self):
        assert tokenize("<upd from X>")[0].kind is TokenKind.LANGLE
        assert tokenize("<cre>")[0].kind is TokenKind.LANGLE
        assert tokenize("<rem at T>")[0].kind is TokenKind.LANGLE
        assert tokenize("<at T>")[0].kind is TokenKind.LANGLE

    def test_positions_recorded(self):
        tokens = tokenize("select x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("select ^")
