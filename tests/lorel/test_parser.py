"""Tests for the Lorel/Chorel parser and pretty-printer."""

import pytest

from repro import ParseError, format_query, parse_query, parse_timestamp
from repro.lorel.ast import (
    And,
    Comparison,
    ExistsCond,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    TimeVar,
    VarRef,
)
from repro.lorel.parser import parse_definition


class TestSelectFromWhere:
    def test_minimal(self):
        query = parse_query("select guide.restaurant")
        assert len(query.select) == 1
        path = query.select[0].expr
        assert isinstance(path, PathExpr)
        assert path.start == "guide"
        assert [step.label for step in path.steps] == ["restaurant"]

    def test_from_with_variables(self):
        query = parse_query("select N from guide.restaurant R, R.name N")
        assert [item.var for item in query.from_items] == ["R", "N"]
        assert query.from_items[1].path.start == "R"

    def test_where_comparison(self):
        query = parse_query(
            "select guide.restaurant where guide.restaurant.price < 20.5")
        assert isinstance(query.where, Comparison)
        assert query.where.op == "<"
        assert query.where.right == Literal(20.5)

    def test_select_as_label(self):
        query = parse_query('select N as restaurant-name from guide.name N')
        assert query.select[0].label == "restaurant-name"

    def test_multi_item_select(self):
        query = parse_query("select N, T, NV from guide.x N")
        assert len(query.select) == 3

    def test_and_or_not_precedence(self):
        query = parse_query(
            "select x where a = 1 and b = 2 or not c = 3")
        assert isinstance(query.where, Or)
        assert isinstance(query.where.left, And)
        assert isinstance(query.where.right, Not)

    def test_parenthesized_condition(self):
        query = parse_query("select x where a = 1 and (b = 2 or c = 3)")
        assert isinstance(query.where, And)
        assert isinstance(query.where.right, Or)

    def test_like(self):
        query = parse_query('select x where guide.name like "%Lytton%"')
        assert isinstance(query.where, LikeCond)
        assert query.where.pattern == "%Lytton%"

    def test_exists(self):
        query = parse_query(
            "select N from g.r R where exists P in R.price : P = 10")
        assert isinstance(query.where, ExistsCond)
        assert query.where.var == "P"

    def test_bare_path_is_existence_test(self):
        query = parse_query("select x where guide.restaurant.price")
        assert isinstance(query.where, Comparison)
        assert query.where.right == Literal(None)
        assert query.where.op == "!="

    def test_timestamp_literal(self):
        query = parse_query("select x where T < 4Jan97")
        assert query.where.right == Literal(parse_timestamp("4Jan97"))

    def test_timevar(self):
        query = parse_query("select x where T > t[-1]")
        assert query.where.right == TimeVar(-1)

    def test_wildcards_and_patterns(self):
        query = parse_query('select g.#.name where g.# like "%x%"')
        assert query.select[0].expr.steps[0].label == "#"

    def test_percent_label_pattern(self):
        query = parse_query("select g.%name%")
        assert query.select[0].expr.steps[0].label == "%name%"

    def test_quoted_label(self):
        query = parse_query('select g."label with spaces"')
        assert query.select[0].expr.steps[0].label == "label with spaces"

    def test_amp_label(self):
        query = parse_query("select X.&val from g.r X")
        assert query.select[0].expr.steps[0].label == "&val"

    def test_contextual_keywords_as_labels(self):
        query = parse_query("select g.add.at.to")
        assert [step.label for step in query.select[0].expr.steps] == \
            ["add", "at", "to"]


class TestAnnotationExpressions:
    def test_arc_annotation_minimal(self):
        query = parse_query("select guide.<add>restaurant")
        step = query.select[0].expr.steps[0]
        assert step.arc_annotation.kind == "add"
        assert step.arc_annotation.at_var is None

    def test_arc_annotation_with_time(self):
        query = parse_query("select guide.<add at T>restaurant")
        assert query.select[0].expr.steps[0].arc_annotation.at_var == "T"

    def test_arc_annotation_with_literal_time(self):
        query = parse_query("select guide.<add at 5Jan97>restaurant")
        annotation = query.select[0].expr.steps[0].arc_annotation
        assert annotation.at_literal == parse_timestamp("5Jan97")

    def test_node_annotation_cre(self):
        query = parse_query("select g.comment<cre at T>")
        annotation = query.select[0].expr.steps[0].node_annotation
        assert annotation.kind == "cre" and annotation.at_var == "T"

    def test_node_annotation_upd_full(self):
        query = parse_query("select g.price<upd at T from OV to NV>")
        annotation = query.select[0].expr.steps[0].node_annotation
        assert (annotation.at_var, annotation.from_var, annotation.to_var) \
            == ("T", "OV", "NV")

    def test_node_annotation_upd_partial(self):
        query = parse_query("select g.price<upd to NV>")
        annotation = query.select[0].expr.steps[0].node_annotation
        assert annotation.at_var is None and annotation.to_var == "NV"

    def test_virtual_at_annotation(self):
        query = parse_query("select g.price<at T>")
        annotation = query.select[0].expr.steps[0].node_annotation
        assert annotation.kind == "at" and annotation.at_var == "T"

    def test_virtual_at_with_timevar(self):
        query = parse_query("select g.<at t[-1]>restaurant")
        annotation = query.select[0].expr.steps[0].arc_annotation
        assert annotation.at_literal == TimeVar(-1)

    def test_both_annotations_on_one_step(self):
        query = parse_query("select g.<add at T1>price<upd at T2>")
        step = query.select[0].expr.steps[0]
        assert step.arc_annotation.kind == "add"
        assert step.node_annotation.kind == "upd"

    def test_cre_before_label_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select g.<cre at T>price")

    def test_add_after_label_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select g.price<add at T>")

    def test_lorel_dialect_rejects_annotations(self):
        with pytest.raises(ParseError):
            parse_query("select guide.<add>restaurant",
                        allow_annotations=False)

    def test_canonicalization(self):
        from repro.lorel.ast import AnnotationExpr, FreshNames
        fresh = FreshNames()
        canon = AnnotationExpr("add").canonical(fresh)
        assert canon.at_var is not None
        canon_upd = AnnotationExpr("upd", from_var="X").canonical(fresh)
        assert canon_upd.at_var and canon_upd.to_var and \
            canon_upd.from_var == "X"


class TestDefinitions:
    def test_polling_definition(self):
        definition = parse_definition(
            "define polling query LyttonRestaurants as "
            "select guide.restaurant "
            'where guide.restaurant.address.# like "%Lytton%"')
        assert definition.kind == "polling"
        assert definition.name == "LyttonRestaurants"

    def test_filter_definition(self):
        definition = parse_definition(
            "define filter query NewOnLytton as "
            "select LyttonRestaurants.restaurant<cre at T> "
            "where T > t[-1]")
        assert definition.kind == "filter"
        assert definition.query.where is not None

    def test_bad_kind_rejected(self):
        with pytest.raises(ParseError):
            parse_definition("define weird query X as select y")


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(ParseError):
            parse_query("from g.x")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_query("select g.x nonsense extra")

    def test_dangling_dot(self):
        with pytest.raises(ParseError):
            parse_query("select g.")

    def test_unclosed_annotation(self):
        with pytest.raises(ParseError):
            parse_query("select g.<add at T restaurant")

    def test_error_carries_position(self):
        try:
            parse_query("select g where ()")
        except ParseError as error:
            assert error.position is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestPrettyRoundTrip:
    QUERIES = [
        "select guide.restaurant",
        "select guide.restaurant where guide.restaurant.price < 20.5",
        "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
        "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
        'select N from guide.restaurant R, R.name N where '
        'R.<add at T>price = "moderate" and T >= 1Jan97',
        "select guide.<add at 5Jan97>restaurant",
        'select x where a like "%y%" or not b = 2',
        "select R from g.r R where exists P in R.price : P = 10",
        "select Restaurants.restaurant<cre at T> where T > t[-1]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_round_trip(self, text):
        query = parse_query(text)
        assert parse_query(format_query(query)) == query
        assert parse_query(str(query)) == query
