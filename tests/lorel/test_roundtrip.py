"""Parser <-> pretty-printer round trips.

Two layers:

* **Corpus**: every query text this repo already trusts -- the indexable
  and fallback pushdown corpora, the differential harness's templates,
  and both halves of the translation goldens -- must survive
  ``parse(format_query(parse(text))) == parse(text)`` (and the same
  through ``str``), so the pretty-printer never prints something the
  parser reads back differently.

* **Property**: a hypothesis generator builds random ASTs directly (the
  printable fragment: left-nested conjunctions, explicit variables,
  annotated steps, closures, timestamps from a parsed pool) and asserts
  the *exact* identity ``parse(format_query(q)) == q`` -- no
  normalization slack at all.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import format_query, parse_query, parse_timestamp
from repro.lorel.ast import (
    And,
    AnnotationExpr,
    Comparison,
    ExistsCond,
    FromItem,
    LikeCond,
    Literal,
    Not,
    Or,
    PathExpr,
    PathStep,
    Query,
    SelectItem,
    TimeRange,
    TimeVar,
    VarRef,
)
from tests.chorel.test_optimize import FALLBACK, INDEXABLE
from tests.test_differential_index import QUERY_TEMPLATES

CHOREL_GOLDENS = Path(__file__).resolve().parent.parent / "chorel" / "goldens"


def golden_corpus() -> list[str]:
    """Both halves of every translation golden: Chorel in, Lorel out."""
    queries: list[str] = []
    for path in sorted(CHOREL_GOLDENS.glob("*.txt")):
        text = path.read_text(encoding="utf-8")
        chorel_part, _, lorel_part = text.partition("Lorel translation:")
        queries.append(chorel_part.replace("Chorel:", "").strip())
        queries.append(lorel_part.strip())
    return [query for query in queries if query]


# Every cross-time surface form, including the sugar spellings
# (``changed-in``, ``versions over``, ``since``) that normalize to the
# canonical ``<kind at .. in [a..b]>`` shape.
RANGE_CORPUS = [
    "select T from guide.restaurant.price <changed at T in [1Jan97..5Jan97]>",
    "select T from guide.restaurant.price <changed-in [1Jan97..5Jan97] at T>",
    "select T from guide.restaurant.name <changed since 2Jan97 at T>",
    "select T from guide.restaurant <changed at T>",
    "select X, T from guide.restaurant <last-change at T> X",
    "select X, T from guide.<last-change at T>parking X",
    "select X from guide.restaurant.price <at [1Jan97..9Jan97]> X",
    "select X from guide.restaurant.price <at T in [1Jan97..9Jan97]> X",
    "select X from guide.restaurant.price <versions over [1Jan97..9Jan97]> X",
    "select X from guide.restaurant.price <versions in [1Jan97..9Jan97]> X",
    "select X, T from guide.restaurant.comment"
    "<upd at T in [1Jan97..9Jan97] from OV to NV> X",
    "select T from guide.<add at T in [1Jan97..]>restaurant",
    "select T from guide.<rem at T in [5Jan97..8Jan97]>parking",
    "select T from guide.restaurant <changed at T in [..8Jan97]>",
    "select T from guide.restaurant <changed at T in [t[0]..t[1]]>",
    "select T from guide.<changed at T in [1Jan97..8Jan97]>restaurant",
]

CORPUS = (
    list(INDEXABLE)
    + list(FALLBACK)
    + [template.format(low="1Jan97", mid="5Jan97", high="8Jan97",
                       label="item")
       for template in QUERY_TEMPLATES]
    + golden_corpus()
    + RANGE_CORPUS
)


@pytest.mark.parametrize("text", CORPUS)
def test_corpus_round_trips(text):
    parsed = parse_query(text)
    assert parse_query(format_query(parsed)) == parsed
    assert parse_query(str(parsed)) == parsed


# ---------------------------------------------------------------------------
# Hypothesis: random ASTs print-and-parse to themselves, exactly.
# ---------------------------------------------------------------------------

LABELS = st.sampled_from(
    ["restaurant", "price", "name", "comment", "parking", "item", "link"])
VARS = st.sampled_from(["R", "N", "P", "X1", "Y2", "Z"])
TIME_VARS = st.sampled_from(["T", "U", "T2"])
VALUE_VARS = st.sampled_from(["OV", "NV", "V1"])
DB_NAMES = st.sampled_from(["guide", "root", "db1"])
TIMESTAMPS = st.sampled_from(
    [parse_timestamp(text) for text in
     ["1Jan97", "5Jan97", "8Jan97", "20Jan97", "3Feb98"]])
SAFE_STRINGS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz 0123456789", min_size=0, max_size=8)
LIKE_PATTERNS = st.sampled_from(["%a%", "Jan%", "_b_", "%lot%"])


RANGE_BOUNDS = st.one_of(
    TIMESTAMPS, st.integers(min_value=0, max_value=2).map(TimeVar))


@st.composite
def time_ranges(draw):
    shape = draw(st.integers(min_value=0, max_value=2))
    low = draw(RANGE_BOUNDS) if shape != 1 else None
    high = draw(RANGE_BOUNDS) if shape != 0 else None
    return TimeRange(low, high)


@st.composite
def annotations(draw, kinds, range_kinds=()):
    kind = draw(st.sampled_from(kinds))
    in_range = None
    if kind in range_kinds and draw(st.booleans()):
        in_range = draw(time_ranges())
    at_var = at_literal = None
    slot = draw(st.integers(min_value=0, max_value=2))
    if slot == 1:
        at_var = draw(TIME_VARS)
    elif slot == 2:
        at_literal = draw(TIMESTAMPS)
    if kind == "at" and slot == 0 and in_range is None:
        at_var = draw(TIME_VARS)  # a bare <at> is not printable syntax
    from_var = to_var = None
    if kind == "upd":
        if draw(st.booleans()):
            from_var = draw(VALUE_VARS)
        if draw(st.booleans()):
            to_var = draw(VALUE_VARS)
    return AnnotationExpr(kind, at_var=at_var, from_var=from_var,
                          to_var=to_var, at_literal=at_literal,
                          in_range=in_range)


# Range-at is node-only syntax, so the arc position excludes "at" from
# its range-capable kinds; everything else takes an ``in [a..b]``.
ARC_KINDS = ("add", "rem", "at", "changed", "last-change")
ARC_RANGE_KINDS = ("add", "rem", "changed", "last-change")
NODE_KINDS = ("cre", "upd", "at", "changed", "last-change")
NODE_RANGE_KINDS = NODE_KINDS


@st.composite
def path_steps(draw):
    shape = draw(st.integers(min_value=0, max_value=9))
    if shape == 0:
        return PathStep("#")
    label = draw(LABELS)
    if shape == 1:
        return PathStep(label, repetition=draw(st.sampled_from(["*", "+"])))
    arc = node = None
    if shape in (2, 3):
        arc = draw(annotations(ARC_KINDS, range_kinds=ARC_RANGE_KINDS))
    if shape in (3, 4):
        node = draw(annotations(NODE_KINDS, range_kinds=NODE_RANGE_KINDS))
    return PathStep(label, arc_annotation=arc, node_annotation=node)


@st.composite
def path_exprs(draw, max_steps=3):
    start = draw(st.one_of(DB_NAMES, VARS))
    steps = tuple(draw(st.lists(path_steps(), min_size=1,
                                max_size=max_steps)))
    return PathExpr(start, steps)


OPERANDS = st.one_of(
    VARS.map(VarRef),
    TIME_VARS.map(VarRef),
    st.integers(min_value=-999, max_value=999).map(Literal),
    SAFE_STRINGS.map(Literal),
    st.booleans().map(Literal),
    TIMESTAMPS.map(Literal),
    st.integers(min_value=-2, max_value=2).map(TimeVar),
    path_exprs(max_steps=2),
)

COMPARISONS = st.builds(
    Comparison, OPERANDS,
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), OPERANDS)

LIKES = st.builds(LikeCond, st.one_of(VARS.map(VarRef), path_exprs(2)),
                  LIKE_PATTERNS)


def conditions(depth=2):
    atom = st.one_of(COMPARISONS, LIKES)
    if depth <= 0:
        return atom
    inner = conditions(depth - 1)
    compound = st.one_of(
        atom,
        st.builds(Or, inner, inner),
        st.builds(Not, inner),
        st.builds(ExistsCond, VARS, path_exprs(2), inner),
    )
    # `and` chains must be left-nested: the parser is left-associative
    # and the printer adds no parentheses around conjuncts.
    return st.lists(compound, min_size=1, max_size=3).map(_fold_and)


def _fold_and(conjuncts):
    folded = conjuncts[0]
    for part in conjuncts[1:]:
        folded = And(folded, part)
    return folded


SELECT_ITEMS = st.builds(
    SelectItem,
    st.one_of(VARS.map(VarRef), TIME_VARS.map(VarRef), path_exprs()),
    st.one_of(st.none(), LABELS))

FROM_ITEMS = st.builds(FromItem, path_exprs(),
                       st.one_of(st.none(), VARS))

QUERIES = st.builds(
    Query,
    st.lists(SELECT_ITEMS, min_size=1, max_size=3).map(tuple),
    st.lists(FROM_ITEMS, min_size=0, max_size=3).map(tuple),
    st.one_of(st.none(), conditions()))


@given(query=QUERIES)
@settings(max_examples=300, deadline=None)
def test_random_ast_round_trips_exactly(query):
    assert parse_query(format_query(query)) == query


@given(query=QUERIES)
@settings(max_examples=100, deadline=None)
def test_single_line_rendering_round_trips_exactly(query):
    assert parse_query(str(query)) == query
