"""Tests for the data-view layer (OEMView / DOEMView)."""

import pytest

from repro import COMPLEX, OEMDatabase, parse_timestamp
from repro.lorel.views import DOEMView, OEMView


class TestOEMView:
    def test_children_and_labels(self, guide_db):
        view = OEMView(guide_db, {"guide": "guide"})
        assert set(view.children("guide", "restaurant")) == {"r1", "r2"}
        assert "restaurant" in set(view.labels("guide"))

    def test_value(self, guide_db):
        view = OEMView(guide_db)
        assert view.value("n1") == 10
        assert view.value("r1") is COMPLEX

    def test_name_resolution(self, guide_db):
        view = OEMView(guide_db, {"thedata": "guide"})
        assert view.resolve_name("thedata") == "guide"
        assert view.resolve_name("missing") is None
        assert view.names() == {"thedata": "guide"}

    def test_default_name_is_root(self, guide_db):
        view = OEMView(guide_db)
        assert view.resolve_name("guide") == "guide"

    def test_annotation_functions_empty(self, guide_db):
        view = OEMView(guide_db)
        assert view.cre_fun("n1") == []
        assert view.upd_fun("n1") == []
        assert view.add_fun("guide", "restaurant") == []
        assert view.rem_fun("guide", "restaurant") == []

    def test_time_is_always_now(self, guide_db):
        view = OEMView(guide_db)
        when = parse_timestamp("1Jan90")
        assert set(view.children_at("guide", "restaurant", when)) == \
            {"r1", "r2"}
        assert view.value_at("n1", when) == 10

    def test_matching_labels(self, guide_db):
        view = OEMView(guide_db)
        assert set(view.matching_labels("r2", "%")) >= {"name", "price"}
        assert list(view.matching_labels("r2", "pri%")) == ["price"]

    def test_amp_labels_hidden_from_patterns(self):
        db = OEMDatabase(root="r")
        db.create_node("v", 5)
        db.add_arc("r", "&val", "v")
        db.create_node("x", 1)
        db.add_arc("r", "value", "x")
        view = OEMView(db)
        assert list(view.matching_labels("r", "%")) == ["value"]
        assert list(view.matching_labels("r", "&va%")) == ["&val"]


class TestDOEMView:
    def test_plain_children_are_current_snapshot(self, guide_doem):
        view = DOEMView(guide_doem, {"guide": "guide"})
        # Janta's removed parking arc is invisible to plain navigation.
        assert list(view.children("r2", "parking")) == []
        assert list(view.children("r1", "parking")) == ["n7"]

    def test_labels_exclude_dead_arcs(self, guide_doem):
        view = DOEMView(guide_doem)
        assert "parking" not in set(view.labels("r2"))
        assert "parking" in set(view.all_labels("r2"))

    def test_annotation_functions(self, guide_doem):
        view = DOEMView(guide_doem)
        t1 = parse_timestamp("1Jan97")
        assert view.cre_fun("n2") == [t1]
        assert view.upd_fun("n1") == [(t1, 10, 20)]
        assert view.add_fun("guide", "restaurant") == [(t1, "n2")]
        assert view.rem_fun("r2", "parking") == \
            [(parse_timestamp("8Jan97"), "n7")]

    def test_time_travel(self, guide_doem):
        view = DOEMView(guide_doem)
        early = parse_timestamp("31Dec96")
        assert view.value_at("n1", early) == 10
        assert list(view.children_at("r2", "parking", early)) == ["n7"]
        assert set(view.children_at("guide", "restaurant", early)) == \
            {"r1", "r2"}
