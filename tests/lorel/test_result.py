"""Tests for query results and OEM answer packaging."""

import pytest

from repro import COMPLEX, OEMDatabase
from repro.lorel.result import ObjectRef, QueryResult, Row


@pytest.fixture
def source():
    db = OEMDatabase(root="g")
    db.create_node("a", COMPLEX)
    db.create_node("x", 1)
    db.create_node("y", "two")
    db.add_arc("g", "item", "a")
    db.add_arc("a", "num", "x")
    db.add_arc("a", "word", "y")
    return db


class TestRow:
    def test_accessors(self):
        row = Row((("name", "Janta"), ("price", 10)))
        assert row["name"] == "Janta"
        assert row.get("price") == 10
        assert row.get("missing", "d") == "d"
        assert row.labels() == ["name", "price"]
        assert row.values() == ["Janta", 10]

    def test_duplicate_labels_first_wins_on_lookup(self):
        row = Row((("v", 1), ("v", 2)))
        assert row["v"] == 1
        assert row.values() == [1, 2]

    def test_scalar(self):
        assert Row((("v", 42),)).scalar() == 42
        with pytest.raises(ValueError):
            Row((("a", 1), ("b", 2))).scalar()

    def test_str(self):
        assert str(Row((("v", 42),))) == "{v: 42}"


class TestQueryResult:
    def test_set_semantics(self):
        result = QueryResult()
        result.add(Row((("v", 1),)))
        result.add(Row((("v", 1),)))
        result.add(Row((("v", 2),)))
        assert len(result) == 2

    def test_order_preserved(self):
        result = QueryResult([Row((("v", 2),)), Row((("v", 1),))])
        assert [row.scalar() for row in result] == [2, 1]
        assert result.first().scalar() == 2

    def test_column_and_objects(self):
        result = QueryResult([
            Row((("n", ObjectRef("a")), ("t", 1))),
            Row((("n", ObjectRef("b")), ("t", 2))),
        ])
        assert result.column("t") == [1, 2]
        assert result.objects() == ["a", "b"]

    def test_bool_and_str(self):
        assert not QueryResult()
        assert str(QueryResult()) == "(empty result)"
        filled = QueryResult([Row((("v", 1),))])
        assert filled and "v: 1" in str(filled)


class TestAsOem:
    def test_single_item_rows(self, source):
        result = QueryResult([Row((("item", ObjectRef("a")),))])
        answer = result.as_oem(source)
        answer.check()
        item = next(iter(answer.children("answer", "item")))
        values = {answer.value(child)
                  for child in answer.children(item)}
        assert values == {1, "two"}

    def test_multi_item_rows_use_row_objects(self, source):
        result = QueryResult([
            Row((("n", ObjectRef("x")), ("w", ObjectRef("y")))),
        ])
        answer = result.as_oem(source)
        rows = list(answer.children("answer", "row"))
        assert len(rows) == 1
        assert set(answer.out_labels(rows[0])) == {"n", "w"}

    def test_scalars_become_atoms(self, source):
        result = QueryResult([Row((("when", 42),))])
        answer = result.as_oem(source)
        node = next(iter(answer.children("answer", "when")))
        assert answer.value(node) == 42

    def test_preserve_ids(self, source):
        result = QueryResult([Row((("item", ObjectRef("a")),))])
        answer = result.as_oem(source, preserve_ids=True)
        assert answer.has_node("a") and answer.has_node("x")

    def test_fresh_ids(self, source):
        result = QueryResult([Row((("item", ObjectRef("a")),))])
        answer = result.as_oem(source, preserve_ids=False)
        assert not answer.has_node("a")
        assert len(answer) == 4  # root + a + x + y under new names

    def test_shared_object_copied_once(self, source):
        result = QueryResult([
            Row((("first", ObjectRef("a")),)),
            Row((("second", ObjectRef("a")),)),
        ])
        answer = result.as_oem(source)
        assert len(list(answer.children("answer", "first"))) == 1
        assert len(list(answer.children("answer", "second"))) == 1
        # one underlying copy, two arcs to it
        assert len(answer) == 1 + 3

    def test_cycles_survive(self, source):
        source.add_arc("a", "up", "g")  # cycle through the root
        result = QueryResult([Row((("item", ObjectRef("a")),))])
        answer = result.as_oem(source)
        answer.check()
        assert any(arc.label == "up" for arc in answer.arcs())

    def test_custom_root(self, source):
        result = QueryResult([Row((("item", ObjectRef("a")),))])
        answer = result.as_oem(source, root="notification")
        assert answer.root == "notification"
