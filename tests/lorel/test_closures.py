"""Tests for GPE label closures: ``label*`` and ``label+``."""

import pytest

from repro import COMPLEX, LorelEngine, OEMDatabase, ParseError, parse_query


@pytest.fixture
def parts():
    """A part hierarchy: engine -> piston -> ring, with a cycle."""
    db = OEMDatabase(root="catalog")
    db.create_node("engine", COMPLEX)
    db.create_node("piston", COMPLEX)
    db.create_node("ring", COMPLEX)
    db.create_node("ename", "engine")
    db.create_node("pname", "piston")
    db.create_node("rname", "ring")
    db.add_arc("catalog", "part", "engine")
    db.add_arc("engine", "part", "piston")
    db.add_arc("piston", "part", "ring")
    db.add_arc("ring", "made-for", "engine")  # cycle
    db.add_arc("engine", "name", "ename")
    db.add_arc("piston", "name", "pname")
    db.add_arc("ring", "name", "rname")
    return db


class TestParsing:
    def test_star_and_plus(self):
        query = parse_query("select catalog.part*.name")
        step = query.select[0].expr.steps[0]
        assert step.repetition == "*"
        assert parse_query("select catalog.part+").select[0].expr.steps[0] \
            .repetition == "+"

    def test_round_trip(self):
        for text in ["select catalog.part*.name", "select c.part+",
                     "select c.(a|b)*"]:
            query = parse_query(text)
            assert parse_query(str(query)) == query

    def test_arc_annotation_with_closure_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select c.<add at T>part*")

    def test_node_annotation_after_closure_allowed(self):
        query = parse_query("select c.part*<cre at T>")
        step = query.select[0].expr.steps[0]
        assert step.repetition == "*" and step.node_annotation is not None


class TestEvaluation:
    def test_plus_requires_one_hop(self, parts):
        engine = LorelEngine(parts, name="catalog")
        result = engine.run("select P from catalog.part.part+ P")
        assert sorted(result.objects()) == ["piston", "ring"]

    def test_star_includes_start(self, parts):
        engine = LorelEngine(parts, name="catalog")
        result = engine.run("select P from catalog.part.part* P")
        assert sorted(result.objects()) == ["engine", "piston", "ring"]

    def test_closure_then_more_steps(self, parts):
        engine = LorelEngine(parts, name="catalog")
        result = engine.run("select N from catalog.part+.name N")
        values = sorted(parts.value(node) for node in result.objects())
        assert values == ["engine", "piston", "ring"]

    def test_cycle_safe(self, parts):
        engine = LorelEngine(parts, name="catalog")
        result = engine.run(
            "select P from catalog.part.(part|made-for)+ P")
        # reaches everything in the cycle exactly once per object
        assert sorted(result.objects()) == ["engine", "piston", "ring"]

    def test_closure_with_node_annotation(self, guide_doem):
        from repro import ChorelEngine
        engine = ChorelEngine(guide_doem, name="guide")
        # everything created, at any depth under restaurants (comment, name)
        result = engine.run(
            "select X from guide.restaurant.(comment|name)*<cre at T> X")
        # '*' includes the restaurants themselves: n2 (Hakata) was created
        # too, alongside its name (n3) and comment (n5).
        assert sorted(row.scalar().node for row in result) == \
            ["n2", "n3", "n5"]

    def test_closure_in_translated_backend(self, guide_doem):
        from repro import ChorelEngine, TranslatingChorelEngine
        query = "select P from guide.restaurant.parking.nearby-eats* P"
        native = ChorelEngine(guide_doem, name="guide")
        translated = TranslatingChorelEngine(guide_doem, name="guide")
        assert sorted(map(str, native.run(query))) == \
            sorted(map(str, translated.run(query)))
