"""Tests for the repro command line."""

import io

import pytest

from repro import LoreStore, build_doem, dumps
from repro.cli import main
from tests.conftest import make_guide_db, make_guide_history


@pytest.fixture
def guide_file(tmp_path):
    path = tmp_path / "guide.oem"
    path.write_text(dumps(make_guide_db()), encoding="utf-8")
    return path


@pytest.fixture
def doem_store(tmp_path):
    store_dir = tmp_path / "store"
    store = LoreStore(store_dir)
    store.put_doem("guidehist",
                   build_doem(make_guide_db(), make_guide_history()))
    return store_dir


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestValidateAndShow:
    def test_validate_ok(self, guide_file):
        code, text = run_cli("validate", str(guide_file))
        assert code == 0
        assert "OK:" in text and "root &guide" in text

    def test_validate_bad_file(self, tmp_path):
        bad = tmp_path / "bad.oem"
        bad.write_text("not oem at all", encoding="utf-8")
        assert run_cli("validate", str(bad))[0] == 1

    def test_validate_missing_file(self, tmp_path):
        assert run_cli("validate", str(tmp_path / "nope.oem"))[0] == 1

    def test_show(self, guide_file):
        code, text = run_cli("show", str(guide_file))
        assert code == 0
        assert "Bangkok Cuisine" in text


class TestQuery:
    def test_lorel_query(self, guide_file):
        code, text = run_cli(
            "query", str(guide_file),
            "select guide.restaurant where guide.restaurant.price < 20.5")
        assert code == 0
        assert "&r1" in text

    def test_empty_result(self, guide_file):
        code, text = run_cli("query", str(guide_file),
                             "select guide.nothing")
        assert code == 0
        assert "empty" in text

    def test_parse_error_is_reported(self, guide_file):
        assert run_cli("query", str(guide_file), "select select")[0] == 1


class TestDiff:
    def test_diff(self, tmp_path, guide_file):
        changed = make_guide_db()
        changed.update_value("n1", 99)
        new_file = tmp_path / "new.oem"
        new_file.write_text(dumps(changed), encoding="utf-8")
        code, text = run_cli("diff", str(guide_file), str(new_file))
        assert code == 0
        assert "updNode(n1, 99)" in text

    def test_no_changes(self, guide_file):
        code, text = run_cli("diff", str(guide_file), str(guide_file))
        assert code == 0
        assert "no changes" in text


class TestHtmlDiff:
    def test_markup_to_stdout(self, tmp_path):
        old = tmp_path / "a.html"
        new = tmp_path / "b.html"
        old.write_text("<p>hello</p>", encoding="utf-8")
        new.write_text("<p>goodbye</p>", encoding="utf-8")
        code, text = run_cli("htmldiff", str(old), str(new))
        assert code == 0
        assert "htmldiff-legend" in text

    def test_markup_to_file(self, tmp_path):
        old = tmp_path / "a.html"
        new = tmp_path / "b.html"
        old.write_text("<p>hello</p>", encoding="utf-8")
        new.write_text("<p>hello<b>!</b></p>", encoding="utf-8")
        out_file = tmp_path / "out.html"
        code, text = run_cli("htmldiff", str(old), str(new),
                             "-o", str(out_file))
        assert code == 0
        assert out_file.exists()


class TestHistoryAndChorel:
    def test_timeline(self, doem_store):
        code, text = run_cli("timeline", str(doem_store), "guidehist", "n1")
        assert code == 0
        assert "value 10 -> 20" in text

    def test_timeline_quiet_object(self, doem_store):
        code, text = run_cli("timeline", str(doem_store), "guidehist", "nm1")
        assert code == 0
        assert "no recorded changes" in text

    def test_timeline_unknown_node(self, doem_store):
        assert run_cli("timeline", str(doem_store), "guidehist",
                       "ghost")[0] == 1

    def test_history(self, doem_store):
        code, text = run_cli("history", str(doem_store), "guidehist")
        assert code == 0
        assert "updNode(n1, 20)" in text
        assert "remArc(r2, 'parking', n7)" in text

    def test_chorel_native(self, doem_store):
        code, text = run_cli("chorel", str(doem_store), "guidehist",
                             "select guide.<add at T>restaurant")
        assert code == 0
        assert "&n2" in text

    def test_chorel_translated(self, doem_store):
        code, text = run_cli("chorel", str(doem_store), "guidehist",
                             "select guide.<add at T>restaurant",
                             "--translate")
        assert code == 0
        assert "&restaurant-history" in text  # the printed translation
        assert "&n2" in text                   # and the same answer

    def test_unknown_store_name(self, doem_store):
        assert run_cli("chorel", str(doem_store), "nope", "select x")[0] == 1


DEMO_QUERY = "select T, X from root.<add at T>item X where T > 20Jan97"


class TestExplainAndProfile:
    def test_explain_demo(self):
        code, text = run_cli("explain", DEMO_QUERY)
        assert code == 0
        assert text.startswith(f"EXPLAIN {DEMO_QUERY}")
        assert "backend: chorel-indexed" in text
        assert "plan:    index-scan add" in text
        assert "chorel.index_scan" in text
        assert "index.hit_rate" in text

    def test_explain_backends(self):
        for backend, label in (("native", "chorel-native"),
                               ("translate", "chorel-translate")):
            code, text = run_cli("explain", DEMO_QUERY,
                                 "--backend", backend)
            assert code == 0
            assert f"backend: {label}" in text

    def test_backends_agree_on_rows(self):
        import re
        counts = set()
        for backend in ("indexed", "native", "translate"):
            code, text = run_cli("explain", DEMO_QUERY,
                                 "--backend", backend)
            assert code == 0
            counts.add(re.search(r"rows:\s+(\d+)", text).group(1))
        assert len(counts) == 1

    def test_explain_with_json_sidecar(self, tmp_path):
        import json
        trace = tmp_path / "trace.json"
        code, text = run_cli("explain", DEMO_QUERY, "--json", str(trace))
        assert code == 0
        assert f"-- JSON observation -> {trace}" in text
        payload = json.loads(trace.read_text(encoding="utf-8"))
        assert payload["backend"] == "chorel-indexed"
        assert payload["trace"][0]["name"] == "chorel.query"

    def test_profile_stdout_json(self):
        import json
        code, text = run_cli("profile", DEMO_QUERY)
        assert code == 0
        payload = json.loads(text)
        assert payload["query"] == DEMO_QUERY
        assert payload["rows"] > 0
        assert "chorel.parse" in payload["phases"]

    def test_profile_json_file(self, tmp_path):
        import json
        trace = tmp_path / "profile.json"
        code, text = run_cli("profile", DEMO_QUERY, "--json", str(trace))
        assert code == 0
        assert "row(s)" in text
        assert json.loads(trace.read_text(encoding="utf-8"))["rows"] > 0

    def test_explain_against_store(self, doem_store):
        code, text = run_cli("explain", "select guide.<add at T>restaurant",
                             "--store", str(doem_store), "--db", "guidehist")
        assert code == 0
        assert "backend: chorel-indexed" in text
        assert "rows:    1" in text

    def test_store_requires_db(self, doem_store):
        code, _ = run_cli("explain", DEMO_QUERY, "--store", str(doem_store))
        assert code == 1

    def test_profile_parse_error(self):
        assert run_cli("profile", "select ???")[0] == 1


class TestAnalyze:
    def test_analyze_demo_prints_runtime_tree(self):
        code, text = run_cli("analyze", DEMO_QUERY)
        assert code == 0
        assert "-- EXPLAIN ANALYZE (indexed):" in text
        assert "rows" in text and "time" in text  # per-operator stats
        assert "fingerprint:" in text
        assert "-- 10 row(s)" in text

    def test_backends_agree_on_rows(self):
        import re
        counts = set()
        for backend in ("indexed", "native", "translate"):
            code, text = run_cli("analyze", DEMO_QUERY,
                                 "--backend", backend)
            assert code == 0
            counts.add(re.search(r"-- (\d+) row\(s\)", text).group(1))
        assert counts == {"10"}

    def test_native_backend_shows_operator_chain(self):
        code, text = run_cli("analyze", DEMO_QUERY, "--backend", "native")
        assert code == 0
        for op in ("Project", "Predicate", "PathExpand", "Scan"):
            assert op in text, op
        assert "rows 30 -> 10" in text  # the predicate's selectivity

    def test_analyze_json_sidecar(self, tmp_path):
        import json
        sidecar = tmp_path / "analyze.json"
        code, text = run_cli("analyze", DEMO_QUERY, "--backend", "native",
                             "--json", str(sidecar))
        assert code == 0
        assert f"-- JSON observation -> {sidecar}" in text
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
        assert payload["query"] == DEMO_QUERY
        assert payload["backend"] == "native"
        assert payload["rows"] == 10
        assert payload["fingerprint"]
        ops = payload["plan"]["ops"]
        assert ops and ops[0]["rows_out"] == 10
        assert payload["plan"]["fingerprint"] == payload["fingerprint"]

    def test_analyze_against_store(self, doem_store):
        code, text = run_cli("analyze", "select guide.<add at T>restaurant",
                             "--store", str(doem_store), "--db", "guidehist")
        assert code == 0
        assert "AnnotationFilter" in text

    def test_analyze_parse_error(self):
        assert run_cli("analyze", "select ???")[0] == 1

    def test_top_table_appends_query_aggregates(self):
        """After an in-process analyze, the top table carries the
        query-log section (the --json payload stays metrics-only)."""
        import json
        run_cli("analyze", DEMO_QUERY)
        code, text = run_cli("top", "--once", "--prefix", "repro.querylog")
        assert code == 0
        assert "fingerprint" in text
        assert "select T, X from root.<add at T>item" in text
        code, text = run_cli("top", "--once", "--json",
                             "--prefix", "repro.querylog")
        assert code == 0
        json.loads(text)  # still pure metrics JSON
        assert "fingerprint" not in text


class TestServeMetrics:
    def test_endpoints_on_ephemeral_port(self):
        import json
        import re
        import threading
        import time
        from urllib.request import urlopen

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve-metrics", "--port", "0", "--duration", "2"], out),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        url = None
        while time.monotonic() < deadline:
            match = re.search(r"http://[\d.]+:\d+", out.getvalue())
            if match:
                url = match.group(0)
                break
            time.sleep(0.02)
        assert url is not None, "serve-metrics never printed its URL"

        with urlopen(url + "/metrics") as response:
            assert response.status == 200
            body = response.read().decode("utf-8")
        assert "repro" in body  # prometheus text exposition

        with urlopen(url + "/health") as response:
            assert response.status == 200
            health = json.loads(response.read().decode("utf-8"))
        assert health["status"] in ("healthy", "degraded", "unhealthy")

        # `repro top --url` scrapes the same server's JSON endpoint.
        code, text = run_cli("top", "--once", "--json", "--url", url)
        assert code == 0
        assert isinstance(json.loads(text), dict)
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestTop:
    def test_once_json_is_machine_readable(self):
        import json

        from repro import metrics_registry

        metrics_registry().counter("test.clitop.ticks").inc(3)
        code, text = run_cli("top", "--once", "--json",
                             "--prefix", "test.clitop")
        assert code == 0
        assert json.loads(text) == {"test.clitop.ticks": 3}

    def test_once_table_renders_histograms(self):
        from repro import metrics_registry

        metrics_registry().counter("test.clitop2.ticks").inc()
        metrics_registry().histogram("test.clitop2.seconds").observe(0.002)
        code, text = run_cli("top", "--once", "--prefix", "test.clitop2")
        assert code == 0
        assert "metric" in text and "value" in text
        assert "test.clitop2.ticks" in text
        assert "count=1 mean=2.000ms" in text

    def test_once_empty_prefix(self):
        code, text = run_cli("top", "--once", "--prefix", "no.such.prefix")
        assert code == 0
        assert "(no metrics recorded)" in text


class TestEventsFlag:
    def test_global_events_flag_writes_jsonl(self, tmp_path):
        import json

        from repro.obs.events import disable_events

        events_path = tmp_path / "cli_events.jsonl"
        try:
            code, _ = run_cli("--events", str(events_path), "explain",
                              DEMO_QUERY)
        finally:
            disable_events()
        assert code == 0
        lines = [json.loads(line) for line
                 in events_path.read_text(encoding="utf-8").splitlines()]
        assert any(line["type"] == "query_compiled" for line in lines)


class TestStoreCommand:
    @pytest.fixture
    def demo_store(self, tmp_path):
        from repro.store import close_store

        path = tmp_path / "changelog"
        code, text = run_cli("store", "demo", str(path), "--days", "12")
        assert code == 0
        # The CLI's shared rw handle stays cached in-process; release it
        # so follow-up commands modelling fresh processes can lock.
        close_store(path)
        yield path
        close_store(path)

    def test_init_creates_a_store(self, tmp_path):
        from repro.store import close_store, is_store

        path = tmp_path / "fresh"
        code, text = run_cli("store", "init", str(path))
        close_store(path)
        assert code == 0
        assert is_store(path)
        assert "initialized" in text

    def test_demo_persists_and_checkpoints(self, demo_store):
        code, text = run_cli("store", "info", str(demo_store))
        assert code == 0
        assert "demo" in text and "1" in text

    def test_info_json(self, demo_store):
        import json

        code, text = run_cli("store", "info", str(demo_store), "--json")
        assert code == 0
        info = json.loads(text)
        assert info["histories"]["demo"]["change_sets"] == 12
        assert info["histories"]["demo"]["checkpoints"] >= 1

    def test_fsck_clean_store(self, demo_store):
        code, text = run_cli("store", "fsck", str(demo_store))
        assert code == 0
        assert "store: ok" in text

    def test_fsck_detects_and_repairs_torn_tail(self, demo_store):
        segment = sorted((demo_store / "demo").glob("seg-*.log"))[-1]
        segment.write_bytes(segment.read_bytes()[:-5])

        code, text = run_cli("store", "fsck", str(demo_store))
        assert code == 1
        assert "CORRUPT" in text

        code, text = run_cli("store", "fsck", str(demo_store), "--repair")
        assert code == 0
        assert "repaired" in text

        code, text = run_cli("store", "fsck", str(demo_store))
        assert code == 0

    def test_checkpoint_and_compact(self, demo_store):
        from repro.store import close_store

        code, text = run_cli("store", "checkpoint", str(demo_store), "demo")
        assert code == 0
        assert "checkpoint" in text
        close_store(demo_store)
        code, text = run_cli("store", "compact", str(demo_store), "demo")
        assert code == 0
        assert "generation 2" in text
        close_store(demo_store)
        code, _ = run_cli("store", "fsck", str(demo_store))
        assert code == 0

    def test_explain_reads_a_changelog_store(self, demo_store):
        code, text = run_cli(
            "explain", "--store", str(demo_store), "--db", "demo",
            "select root.<add at T>item where T > 5Jan97")
        assert code == 0
        assert "index" in text.lower() or "scan" in text.lower()

    def test_history_command_reads_a_changelog_store(self, demo_store):
        code, text = run_cli("history", str(demo_store), "demo")
        assert code == 0
        assert "cre" in text or "add" in text

    def test_top_once_with_store_section(self, demo_store):
        code, text = run_cli("top", "--once", "--store", str(demo_store))
        assert code == 0
        assert "demo" in text

    def test_store_requires_db_name(self, demo_store, capsys):
        code, _ = run_cli("explain", "--store", str(demo_store),
                          "select root.item")
        assert code == 1
        assert "--db" in capsys.readouterr().err
