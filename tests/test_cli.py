"""Tests for the repro command line."""

import io

import pytest

from repro import LoreStore, build_doem, dumps
from repro.cli import main
from tests.conftest import make_guide_db, make_guide_history


@pytest.fixture
def guide_file(tmp_path):
    path = tmp_path / "guide.oem"
    path.write_text(dumps(make_guide_db()), encoding="utf-8")
    return path


@pytest.fixture
def doem_store(tmp_path):
    store_dir = tmp_path / "store"
    store = LoreStore(store_dir)
    store.put_doem("guidehist",
                   build_doem(make_guide_db(), make_guide_history()))
    return store_dir


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestValidateAndShow:
    def test_validate_ok(self, guide_file):
        code, text = run_cli("validate", str(guide_file))
        assert code == 0
        assert "OK:" in text and "root &guide" in text

    def test_validate_bad_file(self, tmp_path):
        bad = tmp_path / "bad.oem"
        bad.write_text("not oem at all", encoding="utf-8")
        assert run_cli("validate", str(bad))[0] == 1

    def test_validate_missing_file(self, tmp_path):
        assert run_cli("validate", str(tmp_path / "nope.oem"))[0] == 1

    def test_show(self, guide_file):
        code, text = run_cli("show", str(guide_file))
        assert code == 0
        assert "Bangkok Cuisine" in text


class TestQuery:
    def test_lorel_query(self, guide_file):
        code, text = run_cli(
            "query", str(guide_file),
            "select guide.restaurant where guide.restaurant.price < 20.5")
        assert code == 0
        assert "&r1" in text

    def test_empty_result(self, guide_file):
        code, text = run_cli("query", str(guide_file),
                             "select guide.nothing")
        assert code == 0
        assert "empty" in text

    def test_parse_error_is_reported(self, guide_file):
        assert run_cli("query", str(guide_file), "select select")[0] == 1


class TestDiff:
    def test_diff(self, tmp_path, guide_file):
        changed = make_guide_db()
        changed.update_value("n1", 99)
        new_file = tmp_path / "new.oem"
        new_file.write_text(dumps(changed), encoding="utf-8")
        code, text = run_cli("diff", str(guide_file), str(new_file))
        assert code == 0
        assert "updNode(n1, 99)" in text

    def test_no_changes(self, guide_file):
        code, text = run_cli("diff", str(guide_file), str(guide_file))
        assert code == 0
        assert "no changes" in text


class TestHtmlDiff:
    def test_markup_to_stdout(self, tmp_path):
        old = tmp_path / "a.html"
        new = tmp_path / "b.html"
        old.write_text("<p>hello</p>", encoding="utf-8")
        new.write_text("<p>goodbye</p>", encoding="utf-8")
        code, text = run_cli("htmldiff", str(old), str(new))
        assert code == 0
        assert "htmldiff-legend" in text

    def test_markup_to_file(self, tmp_path):
        old = tmp_path / "a.html"
        new = tmp_path / "b.html"
        old.write_text("<p>hello</p>", encoding="utf-8")
        new.write_text("<p>hello<b>!</b></p>", encoding="utf-8")
        out_file = tmp_path / "out.html"
        code, text = run_cli("htmldiff", str(old), str(new),
                             "-o", str(out_file))
        assert code == 0
        assert out_file.exists()


class TestHistoryAndChorel:
    def test_timeline(self, doem_store):
        code, text = run_cli("timeline", str(doem_store), "guidehist", "n1")
        assert code == 0
        assert "value 10 -> 20" in text

    def test_timeline_quiet_object(self, doem_store):
        code, text = run_cli("timeline", str(doem_store), "guidehist", "nm1")
        assert code == 0
        assert "no recorded changes" in text

    def test_timeline_unknown_node(self, doem_store):
        assert run_cli("timeline", str(doem_store), "guidehist",
                       "ghost")[0] == 1

    def test_history(self, doem_store):
        code, text = run_cli("history", str(doem_store), "guidehist")
        assert code == 0
        assert "updNode(n1, 20)" in text
        assert "remArc(r2, 'parking', n7)" in text

    def test_chorel_native(self, doem_store):
        code, text = run_cli("chorel", str(doem_store), "guidehist",
                             "select guide.<add at T>restaurant")
        assert code == 0
        assert "&n2" in text

    def test_chorel_translated(self, doem_store):
        code, text = run_cli("chorel", str(doem_store), "guidehist",
                             "select guide.<add at T>restaurant",
                             "--translate")
        assert code == 0
        assert "&restaurant-history" in text  # the printed translation
        assert "&n2" in text                   # and the same answer

    def test_unknown_store_name(self, doem_store):
        assert run_cli("chorel", str(doem_store), "nope", "select x")[0] == 1
