"""Tests for change inference: U(A) isomorphic to B."""

import pytest

from repro import (
    AddArc,
    COMPLEX,
    CreNode,
    OEMDatabase,
    RemArc,
    UpdNode,
    apply_diff,
    oem_diff,
    random_database,
    random_change_set,
)
from repro.diff.oemdiff import DiffStats
from repro.errors import DiffError
from repro.sources.base import scramble_ids


def check_diff(old, new):
    """The central contract: applying the diff reproduces the new snapshot."""
    change_set = oem_diff(old, new)
    result = apply_diff(old, change_set)
    assert result.isomorphic_to(new), change_set
    return change_set


class TestBasicEdits:
    def test_identical_snapshots_empty_diff(self, guide_db):
        change_set = oem_diff(guide_db, guide_db.copy())
        assert len(change_set) == 0

    def test_scrambled_identical_snapshot_empty_diff(self, guide_db):
        change_set = oem_diff(guide_db, scramble_ids(guide_db, salt=5))
        assert len(change_set) == 0

    def test_value_update(self, guide_db):
        new = scramble_ids(guide_db, salt=1)
        target = [n for n in new.nodes() if new.value(n) == 10][0]
        new.update_value(target, 20)
        change_set = check_diff(guide_db, new)
        assert change_set.operations() == (UpdNode("n1", 20),)

    def test_insertion(self, guide_db):
        new = scramble_ids(guide_db, salt=2)
        node = new.create_node("hk", COMPLEX)
        new.add_arc("guide", "restaurant", node)
        name = new.create_node("hkn", "Hakata")
        new.add_arc(node, "name", name)
        change_set = check_diff(guide_db, new)
        stats = DiffStats(change_set)
        assert (stats.creates, stats.additions, stats.removals) == (2, 2, 0)

    def test_deletion(self, guide_db):
        new = scramble_ids(guide_db, salt=3)
        # remove Janta (r2's image) entirely
        target = [arc.target for arc in new.arcs()
                  if arc.label == "name" and new.value(arc.target) == "Janta"]
        parent = [arc.source for arc in new.arcs()
                  if arc.target == target[0]][0]
        for arc in list(new.in_arcs(parent)):
            new.remove_arc(*arc)
        new.collect_garbage()
        change_set = check_diff(guide_db, new)
        stats = DiffStats(change_set)
        assert stats.removals >= 1 and stats.creates == 0

    def test_arc_rewiring(self, guide_db):
        new = scramble_ids(guide_db, salt=4)
        # drop Janta's parking arc only (Figure 3's t3 change)
        janta = [arc.source for arc in new.arcs()
                 if arc.label == "name" and new.value(arc.target) == "Janta"][0]
        lot = next(iter(new.children(janta, "parking")))
        new.remove_arc(janta, "parking", lot)
        change_set = check_diff(guide_db, new)
        assert RemArc("r2", "parking", "n7") in change_set.operations()

    def test_type_flip_atomic_to_complex(self):
        old = OEMDatabase(root="r")
        old.create_node("x", "flat address")
        old.add_arc("r", "address", "x")
        new = OEMDatabase(root="r")
        new.create_node("y", COMPLEX)
        new.add_arc("r", "address", "y")
        new.create_node("s", "Lytton")
        new.add_arc("y", "street", "s")
        check_diff(old, new)

    def test_type_flip_complex_to_atomic(self):
        old = OEMDatabase(root="r")
        old.create_node("y", COMPLEX)
        old.add_arc("r", "address", "y")
        old.create_node("s", "Lytton")
        old.add_arc("y", "street", "s")
        new = OEMDatabase(root="r")
        new.create_node("x", "flat address")
        new.add_arc("r", "address", "x")
        check_diff(old, new)

    def test_empty_to_populated(self, guide_db):
        """R0 = empty: QSS's first poll creates everything."""
        empty = OEMDatabase(root="guide")
        change_set = check_diff(empty, guide_db)
        stats = DiffStats(change_set)
        assert stats.creates == len(guide_db) - 1
        assert stats.removals == 0 and stats.updates == 0

    def test_populated_to_empty(self, guide_db):
        empty = OEMDatabase(root="guide")
        change_set = check_diff(guide_db, empty)
        assert DiffStats(change_set).creates == 0


class TestIdentifierDiscipline:
    def test_reserved_ids_avoided(self, guide_db):
        new = scramble_ids(guide_db, salt=6)
        node = new.create_node("fresh", 1)
        new.add_arc("guide", "extra", node)
        reserved = {f"d{i}" for i in range(1, 50)}
        change_set = oem_diff(guide_db, new, reserved_ids=reserved)
        created = change_set.created_nodes()
        assert created and not (created & reserved)

    def test_id_factory(self, guide_db):
        new = scramble_ids(guide_db, salt=7)
        node = new.create_node("fresh", 1)
        new.add_arc("guide", "extra", node)
        counter = iter(range(1000, 2000))
        change_set = oem_diff(guide_db, new,
                              id_factory=lambda: f"q{next(counter)}")
        assert change_set.created_nodes() == {"q1000"}

    def test_colliding_factory_rejected(self, guide_db):
        new = scramble_ids(guide_db, salt=8)
        node = new.create_node("fresh", 1)
        new.add_arc("guide", "extra", node)
        with pytest.raises(DiffError):
            oem_diff(guide_db, new, id_factory=lambda: "n1")


class TestRandomizedContract:
    """Property-style sweep: diff random snapshot pairs, apply, compare."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_evolution(self, seed):
        old = random_database(seed=seed, nodes=25)
        new = old.copy()
        random_change_set(new, seed=seed + 100, size=8).apply_to(new)
        scrambled = scramble_ids(new, salt=seed)
        check_diff(old, scrambled)

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_step_evolution(self, seed):
        db = random_database(seed=seed + 50, nodes=20)
        current = db.copy()
        for step in range(3):
            previous = current.copy()
            random_change_set(current, seed=seed * 10 + step,
                              size=6, id_prefix=f"s{step}_").apply_to(current)
            check_diff(previous, scramble_ids(current, salt=step))
