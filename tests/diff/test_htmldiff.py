"""Tests for htmldiff (Figure 1): HTML -> OEM -> diff -> marked-up HTML."""

import pytest

from repro import COMPLEX, html_diff, html_to_oem
from repro.diff.htmldiff import DELETE_MARK, INSERT_MARK, UPDATE_MARK
from repro.sources.restaurant_guide import RestaurantGuideSource

OLD = ("<html><body><h1>Guide</h1><ul>"
       "<li>Janta - cheap</li>"
       "<li>Bangkok - $10</li>"
       "</ul></body></html>")
NEW = ("<html><body><h1>Guide</h1><ul>"
       "<li>Janta - cheap</li>"
       "<li>Bangkok - $20</li>"
       "<li>Hakata - new!</li>"
       "</ul></body></html>")


class TestHtmlToOem:
    def test_elements_become_complex(self):
        db = html_to_oem("<html><body><p>hi</p></body></html>")
        html_node = next(iter(db.children(db.root, "html")))
        assert db.is_complex(html_node)
        db.check()

    def test_text_becomes_atomic(self):
        db = html_to_oem("<p>hello world</p>")
        p = next(iter(db.children(db.root, "p")))
        text = next(iter(db.children(p, "text")))
        assert db.value(text) == "hello world"

    def test_attributes(self):
        db = html_to_oem('<a href="http://x.org">link</a>')
        a = next(iter(db.children(db.root, "a")))
        href = next(iter(db.children(a, "@href")))
        assert db.value(href) == "http://x.org"

    def test_void_tags(self):
        db = html_to_oem("<p>one<br>two</p>")
        p = next(iter(db.children(db.root, "p")))
        texts = sorted(db.value(t) for t in db.children(p, "text"))
        assert texts == ["one", "two"]
        assert len(list(db.children(p, "br"))) == 1

    def test_whitespace_runs_dropped(self):
        db = html_to_oem("<p>  \n\t </p>")
        p = next(iter(db.children(db.root, "p")))
        assert not db.has_children(p)

    def test_entities_decoded(self):
        db = html_to_oem("<p>a &amp; b</p>")
        p = next(iter(db.children(db.root, "p")))
        text = next(iter(db.children(p, "text")))
        assert db.value(text) == "a & b"


class TestHtmlDiff:
    def test_update_marked(self):
        result = html_diff(OLD, NEW)
        assert UPDATE_MARK in result.markup
        assert 'title="was: Bangkok - $10"' in result.markup
        assert "Bangkok - $20" in result.markup

    def test_insert_marked(self):
        result = html_diff(OLD, NEW)
        assert INSERT_MARK in result.markup
        assert "Hakata - new!" in result.markup

    def test_delete_listed(self):
        result = html_diff(NEW, OLD)
        assert DELETE_MARK in result.markup
        assert "Deleted content" in result.markup
        assert "Hakata" in result.markup

    def test_legend_counts(self):
        result = html_diff(OLD, NEW)
        assert "1 update(s)" in result.markup
        stats = result.stats
        assert stats.updates == 1
        assert stats.creates == 2  # <li> element + its text node

    def test_no_change_no_markers(self):
        result = html_diff(OLD, OLD)
        assert INSERT_MARK not in result.markup
        assert UPDATE_MARK not in result.markup
        assert result.stats.total == 0

    def test_change_set_replays(self):
        from repro import apply_diff, html_to_oem
        result = html_diff(OLD, NEW)
        old_db = html_to_oem(OLD, root="page")
        new_db = html_to_oem(NEW, root="page")
        assert apply_diff(old_db, result.change_set).isomorphic_to(new_db)

    def test_attribute_change_detected(self):
        old = '<a href="http://a.org">x</a>'
        new = '<a href="http://b.org">x</a>'
        result = html_diff(old, new)
        assert result.stats.updates == 1
        assert 'href="http://b.org"' in result.markup

    def test_escaping_in_markup(self):
        result = html_diff("<p>a &lt; b</p>", "<p>a &gt; b</p>")
        assert "a &gt; b" in result.markup


class TestOnRenderedGuide:
    """The Figure 1 scenario: two versions of the rendered guide page."""

    def test_guide_evolution_diff(self):
        source = RestaurantGuideSource(seed=42, initial_restaurants=6,
                                       events_per_day=3.0)
        page_v1 = source.render_html()
        source.advance("8Dec96")
        page_v2 = source.render_html()
        assert page_v1 != page_v2  # the world moved
        result = html_diff(page_v1, page_v2)
        assert result.stats.total > 0
        assert "htmldiff-legend" in result.markup

    def test_guide_page_round_trips_through_oem(self):
        source = RestaurantGuideSource(seed=7, initial_restaurants=4)
        db = html_to_oem(source.render_html())
        db.check()
        assert any(db.value(node) == "Restaurant Guide"
                   for node in db.nodes())
