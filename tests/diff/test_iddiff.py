"""Tests for the identifier-based differ (cooperative sources)."""

import pytest

from repro import COMPLEX, OEMDatabase, random_change_set, random_database
from repro.diff.iddiff import id_diff
from repro.diff.oemdiff import apply_diff
from repro.errors import DiffError
from tests.conftest import make_guide_db, make_guide_history


class TestExactReplay:
    def test_identity(self, guide_db):
        assert len(id_diff(guide_db, guide_db.copy())) == 0

    def test_full_running_example(self, guide_db, figure3_db):
        changes = id_diff(guide_db, figure3_db)
        result = apply_diff(guide_db, changes)
        assert result.same_as(figure3_db)  # exact, not just isomorphic

    def test_reproduces_history_operations(self, guide_db, figure3_db,
                                           guide_history):
        changes = id_diff(guide_db, figure3_db)
        expected = {op for _, change_set in guide_history
                    for op in change_set.operations()}
        assert set(changes.operations()) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_random_evolution_exact(self, seed):
        old = random_database(seed=seed, nodes=25)
        new = old.copy()
        random_change_set(new, seed=seed + 7, size=8).apply_to(new)
        changes = id_diff(old, new)
        assert apply_diff(old, changes).same_as(new), seed

    def test_subtree_deletion_via_gc(self):
        old = OEMDatabase(root="r")
        old.create_node("a", COMPLEX)
        old.create_node("x", 1)
        old.add_arc("r", "sub", "a")
        old.add_arc("a", "v", "x")
        new = OEMDatabase(root="r")
        changes = id_diff(old, new)
        # only the one cut arc; the subtree dies by unreachability
        assert len(changes) == 1
        assert apply_diff(old, changes).same_as(new)


class TestContract:
    def test_mismatched_roots_rejected(self, guide_db):
        other = OEMDatabase(root="different")
        with pytest.raises(DiffError):
            id_diff(guide_db, other)

    def test_scrambled_ids_look_like_churn(self, guide_db):
        """Violating the stable-id contract produces a huge (but valid)
        diff -- exactly why oem_diff exists for autonomous sources."""
        from repro.sources.base import scramble_ids
        scrambled = scramble_ids(guide_db, salt=1)
        # roots match ('guide'), every other id differs
        changes = id_diff(guide_db, scrambled)
        assert len(changes) > len(guide_db)  # total rebuild
        assert apply_diff(guide_db, changes).same_as(scrambled)


class TestQSSIntegration:
    def test_ids_differ_with_stable_source(self):
        from repro import (QSSServer, StaticSource, Subscription, Wrapper,
                           parse_timestamp)
        from repro.qss.managers import DOEMManager

        server = QSSServer(start="30Dec96", deliver_empty=True)
        server.doems = DOEMManager(differ="ids")
        source = StaticSource(make_guide_db(), stable_ids=True)
        server.register_wrapper("guide", Wrapper(source, name="guide"))
        server.subscribe(Subscription(
            name="S", frequency="every day at 9:00am",
            polling_query="select guide.restaurant",
            filter_query="select S.restaurant<cre at T> where T > t[-1]"),
            "guide")
        notifications = server.run_until("2Jan97")
        sizes = [len(n.result) for n in notifications]
        assert sizes[0] == 2 and all(s == 0 for s in sizes[1:])

    def test_bad_differ_name(self):
        from repro.qss.managers import DOEMManager
        from repro.errors import QSSError
        with pytest.raises(QSSError):
            DOEMManager(differ="telepathy")
