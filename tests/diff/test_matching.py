"""Tests for snapshot matching."""

import pytest

from repro import COMPLEX, OEMDatabase, match_snapshots
from repro.diff.matching import Matching, node_signatures, text_bags
from repro.sources.base import scramble_ids


def simple_db(prefix=""):
    db = OEMDatabase(root="g")
    for key, name, price in [("a", "Janta", 10), ("b", "Bangkok", 20)]:
        node = db.create_node(f"{prefix}{key}", COMPLEX)
        db.add_arc("g", "restaurant", node)
        name_node = db.create_node(f"{prefix}{key}n", name)
        db.add_arc(node, "name", name_node)
        price_node = db.create_node(f"{prefix}{key}p", price)
        db.add_arc(node, "price", price_node)
    return db


class TestSignatures:
    def test_equal_structures_equal_signatures(self):
        a, b = simple_db("x"), simple_db("y")
        sig_a, sig_b = node_signatures(a), node_signatures(b)
        assert sorted(sig_a.values()) == sorted(sig_b.values())

    def test_value_change_changes_signature(self):
        a, b = simple_db(), simple_db()
        b.update_value("ap", 99)
        assert node_signatures(a)["ap"] != node_signatures(b)["ap"]

    def test_cyclic_graphs_terminate(self, guide_db):
        signatures = node_signatures(guide_db)
        assert len(signatures) == len(guide_db)

    def test_text_bags_bounded_and_cyclic_safe(self, guide_db):
        bags = text_bags(guide_db)
        assert all(len(bag) <= 64 for bag in bags.values())
        assert "Janta" in bags[guide_db.root]


class TestMatchingMechanics:
    def test_link_rejects_double_match(self):
        matching = Matching()
        matching.link("a", "x")
        with pytest.raises(ValueError):
            matching.link("a", "y")
        with pytest.raises(ValueError):
            matching.link("b", "x")

    def test_roots_always_match(self):
        matching = match_snapshots(simple_db("x"), simple_db("y"))
        assert matching.old_to_new["g"] == "g"


class TestMatchQuality:
    def test_identical_dbs_fully_matched(self):
        a = simple_db()
        matching = match_snapshots(a, a.copy())
        assert len(matching) == len(a)

    def test_scrambled_ids_fully_matched(self, guide_db):
        scrambled = scramble_ids(guide_db, salt=9)
        matching = match_snapshots(guide_db, scrambled)
        assert len(matching) == len(guide_db)
        # every match preserves values
        for old, new in matching.old_to_new.items():
            assert guide_db.value(old) == scrambled.value(new)

    def test_updated_atom_matches_not_recreated(self):
        old = simple_db("o")
        new = simple_db("n")
        new.update_value("nap", 15)  # Janta's price changed
        matching = match_snapshots(old, new)
        assert matching.old_to_new["oap"] == "nap"

    def test_updated_text_matches_by_token_overlap(self):
        old = OEMDatabase(root="g")
        old.create_node("t1", "the quick brown fox jumps")
        old.add_arc("g", "text", "t1")
        new = OEMDatabase(root="g")
        new.create_node("u1", "the quick brown fox sleeps")
        new.create_node("u2", "completely different words here")
        new.add_arc("g", "text", "u1")
        new.add_arc("g", "text", "u2")
        matching = match_snapshots(old, new)
        assert matching.old_to_new["t1"] == "u1"

    def test_new_entry_left_unmatched(self):
        old = simple_db("o")
        new = simple_db("n")
        extra = new.create_node("hk", COMPLEX)
        new.add_arc("g", "restaurant", extra)
        name = new.create_node("hkn", "Hakata")
        new.add_arc(extra, "name", name)
        matching = match_snapshots(old, new)
        assert not matching.matched_new("hk")
        assert not matching.matched_new("hkn")
        assert len(matching) == len(old)

    def test_removed_entry_left_unmatched(self):
        old = simple_db("o")
        new = OEMDatabase(root="g")
        node = new.create_node("only", COMPLEX)
        new.add_arc("g", "restaurant", node)
        name = new.create_node("onlyn", "Janta")
        new.add_arc(node, "name", name)
        price = new.create_node("onlyp", 10)
        new.add_arc(node, "price", price)
        matching = match_snapshots(old, new)
        assert matching.old_to_new["oa"] == "only"
        assert not matching.matched_old("ob")

    def test_shared_and_cyclic_structures(self, guide_db):
        clone = scramble_ids(guide_db, salt=3)
        matching = match_snapshots(guide_db, clone)
        # n7 (shared, cyclic) must map to the clone's parking object.
        new_n7 = matching.old_to_new["n7"]
        assert clone.value(next(iter(clone.children(new_n7, "address")))) \
            == "Lytton lot 2"
