"""Golden-file tests for the EXPLAIN ANALYZE rendering.

Wall times vary run to run, so the goldens mask them (``time ---ms``);
everything else -- operator tree, rows/batches in and out, heuristic
estimates, shard counts, vectorized/fallback splits, the fingerprint --
is deterministic and pinned.  A change to operator accounting or the
render format shows up as a reviewable diff.

To update a golden intentionally, delete it and re-run with
``REGEN_GOLDENS=1``.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro import ChorelEngine, IndexedChorelEngine, build_doem
from repro.plan.analyze import cardinality_feedback
from tests.conftest import make_guide_db, make_guide_history

GOLDENS = Path(__file__).resolve().parent / "goldens"

# name -> (engine class, query)
CASES = {
    "analyze_native_chain": (
        ChorelEngine,
        "select T, R from guide.<add at T>restaurant R where T >= 1Jan97"),
    "analyze_indexed_pushdown": (
        IndexedChorelEngine,
        "select guide.<add at T>restaurant where T < 4Jan97"),
    "analyze_projection_only": (
        ChorelEngine,
        "select guide.restaurant.name"),
    # Cross-time terminals, one per physical strategy: the narrow range
    # runs the merged index scan, the wide one the history replay.
    "analyze_range_index": (
        IndexedChorelEngine,
        "select T from guide.restaurant.price"
        "<changed at T in [1Jan97..5Jan97]>"),
    "analyze_range_replay": (
        IndexedChorelEngine,
        "select X, T from guide.restaurant"
        "<changed at T in [1Jan97..1Mar97]> X"),
}

TIME_PATTERN = re.compile(r"time \d+(?:\.\d+)?ms")


def masked(text: str) -> str:
    return TIME_PATTERN.sub("time ---ms", text)


@pytest.fixture(scope="module")
def doem():
    return build_doem(make_guide_db(), make_guide_history())


def analyze(name: str, doem) -> str:
    engine_cls, query = CASES[name]
    cardinality_feedback().reset()  # heuristic estimates, not feedback
    engine = engine_cls(doem, name="guide")
    engine.run(query, analyze=True)
    compiled = engine.last_compiled
    return (f"query:\n{query}\n\nanalyze:\n"
            f"{masked(compiled.explain(analyze=True))}\n")


@pytest.mark.parametrize("name", sorted(CASES))
def test_analyze_matches_golden(name, doem):
    actual = analyze(name, doem)
    path = GOLDENS / f"{name}.txt"
    if os.environ.get("REGEN_GOLDENS") and not path.exists():
        path.write_text(actual, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, \
        f"analyze drift for <{name}>; diff against {path}"


def test_masking_only_hides_times(doem):
    """The mask leaves rows/batches/estimates intact."""
    raw = analyze("analyze_native_chain", doem)
    assert "time ---ms" in raw
    assert "rows" in raw and "est" in raw
    assert not TIME_PATTERN.search(raw)


def test_every_case_has_a_golden():
    present = {path.stem for path in GOLDENS.glob("analyze_*.txt")}
    assert present == set(CASES), \
        "keep one golden file per pinned ANALYZE rendering"
