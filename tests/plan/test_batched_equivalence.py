"""Batched execution is iterator execution is the legacy evaluator.

The batched physical operators (:mod:`repro.plan.batch`) claim row- and
order-identity with the iterator model and the pre-planner evaluator for
*any* batch size -- the equivalence the batched-frontier argument proves
(a level-synchronous expansion in frontier order replays the
concatenation of per-row depth-first enumerations).  This suite pins the
claim across all four engines, serially and through the sharding
``Exchange`` (thread and process pools), over the same randomized worlds
the index-differential harness trusts, at batch widths 1 (degenerate:
every batch is a row), 7 (prime, never aligned with result counts), 64,
and whole-world (one batch end to end).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    ParallelExecutor,
    TranslatingChorelEngine,
)
from repro.plan.batch import EnvBatch, compile_predicate
from tests.plan.test_planner_equivalence import (
    LOREL_QUERIES,
    RELAXED,
    outcome,
    texts,
)
from tests.test_differential_index import make_world, world_queries

# 1 = per-row degenerate case, 7 = prime (batch boundaries never align
# with operator fan-outs), 64 = mid-size, 1 << 20 = whole-world.
BATCH_SIZES = [1, 7, 64, 1 << 20]

CHOREL_ENGINES = (ChorelEngine, IndexedChorelEngine)


class TestSerialBatchedEquivalence:
    """batched(size) == iterator == legacy, engine by engine."""

    @given(seed=st.integers(min_value=0, max_value=99),
           size=st.sampled_from(BATCH_SIZES))
    @RELAXED
    def test_chorel_native_and_indexed(self, seed, size):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in CHOREL_ENGINES:
            batched = engine_cls(doem, name="root", batch_size=size)
            iterator = engine_cls(doem, name="root", batch_size=0)
            legacy = engine_cls(doem, name="root", use_planner=False)
            for query in queries:
                expected = texts(legacy.run(query))
                assert texts(iterator.run(query)) == expected, \
                    (engine_cls.__name__, query)
                assert texts(batched.run(query)) == expected, \
                    (engine_cls.__name__, size, query)

    @given(seed=st.integers(min_value=0, max_value=99),
           size=st.sampled_from(BATCH_SIZES))
    @RELAXED
    def test_lorel(self, seed, size):
        db, _, _ = make_world(seed)
        batched = LorelEngine(db, name="root", batch_size=size)
        iterator = LorelEngine(db, name="root", batch_size=0)
        legacy = LorelEngine(db, name="root", use_planner=False)
        for query in LOREL_QUERIES:
            expected = texts(legacy.run(query))
            assert texts(iterator.run(query)) == expected, query
            assert texts(batched.run(query)) == expected, (size, query)

    @given(seed=st.integers(min_value=0, max_value=99),
           size=st.sampled_from(BATCH_SIZES))
    @RELAXED
    def test_translating(self, seed, size):
        _, history, doem = make_world(seed)
        batched = TranslatingChorelEngine(doem, name="root", batch_size=size)
        legacy = TranslatingChorelEngine(doem, name="root",
                                         use_planner=False)
        for query in world_queries(history):
            assert outcome(batched, query) == outcome(legacy, query), \
                (size, query)


class TestShardedBatchedEquivalence:
    """Exchange over batches replays serial enumeration for any width."""

    @given(seed=st.integers(min_value=0, max_value=99),
           size=st.sampled_from(BATCH_SIZES),
           workers=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chorel_thread_sharded(self, seed, size, workers):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in CHOREL_ENGINES:
            engine = engine_cls(doem, name="root", batch_size=size)
            legacy = engine_cls(doem, name="root", use_planner=False)
            with ParallelExecutor(engine, max_workers=workers) as executor:
                for query in queries:
                    assert texts(executor.run(query)) == \
                        texts(legacy.run(query)), \
                        (engine_cls.__name__, size, query)

    @given(seed=st.integers(min_value=0, max_value=99),
           size=st.sampled_from(BATCH_SIZES))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lorel_thread_sharded(self, seed, size):
        db, _, _ = make_world(seed)
        engine = LorelEngine(db, name="root", batch_size=size)
        legacy = LorelEngine(db, name="root", use_planner=False)
        with ParallelExecutor(engine, max_workers=3) as executor:
            for query in LOREL_QUERIES:
                assert texts(executor.run(query)) == \
                    texts(legacy.run(query)), (size, query)

    @pytest.mark.parametrize("seed", [1, 8])
    @pytest.mark.parametrize("size", [7, 1 << 20])
    def test_chorel_process_sharded(self, seed, size):
        """Process-pool shards (pickled rows, worker-global evaluator)
        still replay the serial enumeration exactly."""
        _, history, doem = make_world(seed)
        engine = ChorelEngine(doem, name="root", batch_size=size)
        legacy = ChorelEngine(doem, name="root", use_planner=False)
        queries = world_queries(history)
        with ParallelExecutor(engine, processes=True,
                              max_workers=2) as executor:
            for query in queries:
                assert texts(executor.run(query)) == \
                    texts(legacy.run(query)), (size, query)

    @pytest.mark.parametrize("seed", [4, 12])
    def test_translating_sharded(self, seed):
        _, history, doem = make_world(seed)
        engine = TranslatingChorelEngine(doem, name="root", batch_size=7)
        legacy = TranslatingChorelEngine(doem, name="root",
                                         use_planner=False)
        queries = [query for query in world_queries(history)
                   if outcome(legacy, query)[1] is None]
        with ParallelExecutor(engine, max_workers=3) as executor:
            for query in queries:
                assert texts(executor.run(query)) == \
                    texts(legacy.run(query)), query


class TestEnvBatch:
    def test_split_preserves_rows_and_order(self):
        rows = [{"i": i} for i in range(10)]
        for size in (1, 3, 10, 99):
            pieces = list(EnvBatch(rows).split(size))
            assert [env for piece in pieces for env in piece.rows] == rows
            assert all(len(piece) <= size for piece in pieces)

    def test_split_nonpositive_yields_whole(self):
        batch = EnvBatch([{"i": 0}, {"i": 1}])
        assert list(batch.split(0)) == [batch]

    def test_concat_is_split_inverse(self):
        rows = [{"i": i} for i in range(7)]
        assert EnvBatch.concat(list(EnvBatch(rows).split(2))).rows == rows

    def test_column_access(self):
        batch = EnvBatch([{"x": 1}, {"y": 2}, {"x": 3}])
        assert batch.column("x") == [1, None, 3]
        assert len(batch) == 3 and bool(batch)
        assert not EnvBatch([])


class TestCompilePredicate:
    """The vectorized fast path only accepts shapes it can decide."""

    @staticmethod
    def evaluator():
        db, _, _ = make_world(0)
        return LorelEngine(db, name="root")._evaluator

    @staticmethod
    def condition(text: str):
        from repro import parse_query
        return parse_query(f"select root where {text}",
                           allow_annotations=True).where

    def test_pure_comparison_compiles(self):
        pred = compile_predicate(self.condition("X < 5"), self.evaluator())
        assert pred is not None
        from repro.lorel.eval import NodeBinding  # noqa: F401
        assert pred({"X": 3}) is True
        assert pred({"X": 9}) is False

    def test_boolean_composition(self):
        pred = compile_predicate(
            self.condition('X < 5 and not (Y = "b" or X = 2)'),
            self.evaluator())
        assert pred({"X": 3, "Y": "a"}) is True
        assert pred({"X": 2, "Y": "a"}) is False
        assert pred({"X": 3, "Y": "b"}) is False

    def test_unbound_variable_raises_keyerror(self):
        """The row-fallback trigger: unbound names defer to the solver."""
        pred = compile_predicate(self.condition("X < 5"), self.evaluator())
        with pytest.raises(KeyError):
            pred({})

    def test_path_condition_rejected(self):
        assert compile_predicate(self.condition("root.item.price < 5"),
                                 self.evaluator()) is None

    def test_existence_encoding_rejected(self):
        """`path = None` semantics hang on multiplicity -- solver only."""
        from repro.lorel.ast import Comparison, Literal, VarRef
        cond = Comparison(VarRef("X"), "=", Literal(None))
        assert compile_predicate(cond, self.evaluator()) is None

    def test_like_compiles(self):
        pred = compile_predicate(self.condition('X like "%bc%"'),
                                 self.evaluator())
        assert pred({"X": "abcd"}) is True
        assert pred({"X": "ad"}) is False
