"""Cross-time equivalence: the range machinery is trusted *because* this passes.

Three claims over randomized worlds (the same generator the
index-differential harness trusts):

* **Interval composition**: a range query over ``[a..b]`` equals the
  union of the same query over adjacent subintervals ``[a..m]`` and
  ``[m..b]`` -- the diff-composition law that makes incremental
  cross-time materialization sound.
* **Strategy interchangeability**: executing the *same* compiled range
  plan via the merged TimestampIndex scan and via checkpoint-anchored
  history replay produces row- and order-identical results -- with and
  without a durable store log attached (the log only changes where the
  replay starts, never what it emits).
* **Engine agreement**: the planner-served range path (indexed engine,
  either strategy, serial or sharded through a ``ParallelExecutor``)
  produces the same row set as the naive evaluator pipeline (native
  engine, planner on or off); the translate backend refuses the shapes
  cleanly rather than mistranslating them.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    ParallelExecutor,
    TranslatingChorelEngine,
    TranslationError,
    build_doem,
)
from repro.sources.generators import LABELS
from tests.test_differential_index import make_world

RELAXED = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

# Range templates over the generator's vocabulary; {a}/{m}/{b} are drawn
# from each world's own history timestamps.
RANGE_TEMPLATES = [
    "select X, T from root.<changed at T in [{a}..{b}]>{label} X",
    "select N, T from root.{label}.name<changed at T in [{a}..{b}]> N",
    "select T from root.item.price<upd at T in [{a}..{b}]>",
    "select R, T from root.<add at T in [{a}..{b}]>{label} R",
]

# Shapes whose result is *not* a pure per-event range filter (version
# anchoring, latest-per-subject) -- they get the strategy and engine
# equivalences but not the composition law.
EXTRA_TEMPLATES = [
    "select X from root.{label}.name <at [{a}..{b}]> X",
    "select X, T from root.{label}.name <last-change at T> X",
    "select T from root.item.price<changed since {m} at T>",
]


def interval_queries(history, *, templates=RANGE_TEMPLATES):
    times = history.timestamps()
    if len(times) < 2:
        return []
    a, m, b = times[0], times[len(times) // 2], times[-1]
    rng = random.Random(hash((str(a), len(times))))
    label = rng.choice(LABELS)
    return [(template, template.format(a=a, m=m, b=b, label=label),
             template.format(a=a, m=m, b=a if m == a else m, label=label),
             template.format(a=m, m=m, b=b, label=label))
            for template in templates]


def texts(result) -> list[str]:
    return [str(row) for row in result.rows]


def rows(result) -> list[str]:
    return sorted(texts(result))


def run_with_strategy(engine, compiled, strategy: str) -> list[str]:
    compiled.root.plan.strategy = strategy
    return texts(engine.execute(compiled))


class TestIntervalComposition:
    """query([a..b]) == query([a..m]) | query([m..b]), adjacent and closed."""

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_adjacent_intervals_compose(self, seed):
        _, history, doem = make_world(seed)
        cases = interval_queries(history)
        assert cases, "every generated world must produce a history"
        for engine_cls in (ChorelEngine, IndexedChorelEngine):
            engine = engine_cls(doem, name="root")
            for template, whole, left, right in cases:
                union = set(texts(engine.run(left))) \
                    | set(texts(engine.run(right)))
                assert union == set(texts(engine.run(whole))), \
                    (engine_cls.__name__, template)


class TestStrategyInterchangeability:
    """index-scan and checkpoint-replay: row AND order identical."""

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_replay_matches_index_scan(self, seed):
        _, history, doem = make_world(seed)
        engine = IndexedChorelEngine(doem, name="root")
        for template, whole, _left, _right in interval_queries(
                history, templates=RANGE_TEMPLATES + EXTRA_TEMPLATES):
            compiled = engine.compile(engine.parse(whole))
            if not compiled.is_range:
                continue
            via_index = run_with_strategy(engine, compiled, "index-scan")
            via_replay = run_with_strategy(engine, compiled,
                                           "checkpoint-replay")
            assert via_index == via_replay, (template, whole)

    def test_attached_log_only_moves_the_replay_floor(self, tmp_path):
        """A durable checkpoint floor changes the scan start, not rows."""
        from repro.store.store import ChangeLogStore

        db, history, doem = make_world(3)
        with ChangeLogStore(tmp_path / "store", "rw") as store:
            log = store.put_history("world", db, history)
            store.checkpoint("world")
            assert log.checkpoints(), "the floor needs a checkpoint"
            bare = IndexedChorelEngine(doem, name="root")
            backed = IndexedChorelEngine(doem, name="root")
            backed.log = log
            for template, whole, _l, _r in interval_queries(
                    history, templates=RANGE_TEMPLATES + EXTRA_TEMPLATES):
                compiled = bare.compile(bare.parse(whole))
                if not compiled.is_range:
                    continue
                expected = run_with_strategy(bare, compiled,
                                             "checkpoint-replay")
                actual = run_with_strategy(backed, compiled,
                                           "checkpoint-replay")
                assert actual == expected, (template, whole)


class TestEngineAgreement:
    """Planner-served range results match the naive evaluator pipeline."""

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_indexed_matches_naive_serial(self, seed):
        _, history, doem = make_world(seed)
        naive = ChorelEngine(doem, name="root")
        legacy = ChorelEngine(doem, name="root", use_planner=False)
        indexed = IndexedChorelEngine(doem, name="root")
        served_range = False
        for _t, whole, left, right in interval_queries(
                history, templates=RANGE_TEMPLATES + EXTRA_TEMPLATES):
            for query in (whole, left, right):
                expected = rows(legacy.run(query))
                assert rows(naive.run(query)) == expected, query
                assert rows(indexed.run(query)) == expected, query
            served_range = served_range or indexed.last_range_plan is not None
        assert served_range, "the range fast path must actually run"

    @given(seed=st.integers(min_value=0, max_value=99),
           workers=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sharded_matches_serial(self, seed, workers):
        _, history, doem = make_world(seed)
        queries = [whole for _t, whole, _l, _r in interval_queries(
            history, templates=RANGE_TEMPLATES + EXTRA_TEMPLATES)]
        for engine_cls in (ChorelEngine, IndexedChorelEngine):
            engine = engine_cls(doem, name="root")
            serial = engine_cls(doem, name="root")
            with ParallelExecutor(engine, max_workers=workers) as executor:
                for query in queries:
                    assert texts(executor.run(query)) == \
                        texts(serial.run(query)), \
                        (engine_cls.__name__, query)

    @pytest.mark.parametrize("query", [
        "select T from root.item.price<changed at T in [1Jan97..5Jan97]>",
        "select X, T from root.item <last-change at T> X",
        "select X from root.item.name <at [1Jan97..5Jan97]> X",
    ])
    def test_translate_backend_refuses_cleanly(self, query):
        _, _, doem = make_world(0)
        engine = TranslatingChorelEngine(doem, name="root")
        with pytest.raises(TranslationError):
            engine.run(query)
