"""Unit tests for the plan layer: lowering, rewrite rules, EXPLAIN.

Each rewrite rule is exercised in isolation through
``compile_query(..., rules=[...])`` so a failure names the pass, not the
pipeline; the engine-level pipelines are covered by the equivalence and
golden suites next door.
"""

import pytest

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    parse_timestamp,
)
from repro.lorel.ast import (
    And,
    AnnotationExpr,
    Comparison,
    Literal,
    PathExpr,
    PathStep,
    Query,
    SelectItem,
    TimeVar,
    VarRef,
)
from repro.obs.metrics import registry as metrics_registry
from repro.plan import (
    AnnotationFilter,
    AnnotationLiteralPushdown,
    Exchange,
    IndexSelection,
    PathExpand,
    Predicate,
    PredicateReorder,
    Project,
    Scan,
    VirtualAtExpansion,
    compile_query,
    insert_exchange,
    render,
)
from repro.plan.rules import fold_interval, plan_metrics
from repro.plan.stats import IndexPlan
from repro.timestamps import NEG_INF, POS_INF
from tests.conftest import make_guide_db


@pytest.fixture
def chorel(guide_doem):
    return ChorelEngine(guide_doem, name="guide")


@pytest.fixture
def indexed(guide_doem):
    return IndexedChorelEngine(guide_doem, name="guide")


def chain_shapes(root):
    """Node class names from the root down the primary chain."""
    names = []
    node = root
    while node is not None:
        names.append(type(node).__name__)
        kids = node.children()
        node = kids[0] if kids else None
    return names


class TestLowering:
    def test_chain_shape(self, chorel):
        compiled = chorel._compile(chorel.parse(
            'select N from guide.restaurant R, R.name N where N = "Janta"'))
        assert chain_shapes(compiled.root) == [
            "Project", "Predicate", "PathExpand", "PathExpand", "Scan"]

    def test_no_where_no_predicate(self, chorel):
        compiled = chorel._compile(chorel.parse("select guide.restaurant"))
        assert chain_shapes(compiled.root) == [
            "Project", "PathExpand", "Scan"]

    def test_render_is_indented_tree(self, chorel):
        compiled = chorel._compile(chorel.parse(
            "select R from guide.restaurant R"))
        text = render(compiled.root)
        lines = text.splitlines()
        assert lines[0].startswith("Project [")
        assert lines[1].startswith("  PathExpand ")
        assert lines[-1].strip() == "Scan"

    def test_compile_counter_and_histogram(self, chorel):
        before = plan_metrics()["compiled"].value
        chorel._compile(chorel.parse("select guide.restaurant"))
        assert plan_metrics()["compiled"].value == before + 1
        histogram = metrics_registry().histogram(
            "repro.plan.compile_seconds")
        assert histogram.count > 0

    def test_compile_seconds_recorded(self, chorel):
        compiled = chorel._compile(chorel.parse("select guide.restaurant"))
        assert compiled.compile_seconds >= 0.0


class TestVirtualAtExpansion:
    def test_expands_string_literal_in_programmatic_ast(self):
        engine = LorelEngine(make_guide_db(), name="guide")
        step = PathStep("restaurant",
                        arc_annotation=AnnotationExpr("add",
                                                      at_literal="5Jan97"))
        query = Query(select=(SelectItem(PathExpr("guide", (step,))),))
        compiled = compile_query(query, engine._evaluator,
                                 rules=[VirtualAtExpansion()])
        report = compiled.passes[0]
        assert report.fired
        expand = compiled.root.child
        annotation = expand.item.path.steps[-1].arc_annotation
        assert annotation.at_literal == parse_timestamp("5Jan97")

    def test_resolves_polling_time_variable(self, chorel):
        chorel.set_polling_times({0: "5Jan97"})
        compiled = chorel._compile(chorel.parse(
            "select guide.<add at t[0]>restaurant"))
        report = {r.name: r for r in compiled.passes}["virtual-at-expansion"]
        assert report.fired
        node = compiled.root
        while not isinstance(node, PathExpand):
            node = node.children()[0]
        annotation = node.item.path.steps[-1].arc_annotation
        assert annotation.at_literal == parse_timestamp("5Jan97")

    def test_leaves_resolved_timestamps_alone(self, chorel):
        compiled = chorel._compile(chorel.parse(
            "select guide.<add at 5Jan97>restaurant"))
        report = {r.name: r for r in compiled.passes}["virtual-at-expansion"]
        assert not report.fired  # the lexer already produced a Timestamp


class TestAnnotationLiteralPushdown:
    def rule_reports(self, engine, text):
        compiled = engine._compile(engine.parse(text))
        reports = {r.name: r for r in compiled.passes}
        return compiled, reports["annotation-literal-pushdown"]

    def test_literal_pin_collapses_interval(self, indexed):
        compiled, report = self.rule_reports(
            indexed, "select guide.<add at 5Jan97>restaurant")
        assert report.fired
        assert "pinned add at 5Jan97" in report.note
        plan = compiled.index_plan
        assert plan is not None
        assert plan.low == plan.high == parse_timestamp("5Jan97")
        assert plan.include_low and plan.include_high

    def test_candidate_without_pin_does_not_fire(self, indexed):
        compiled, report = self.rule_reports(
            indexed, "select guide.<add at T>restaurant where T < 4Jan97")
        assert not report.fired           # nothing was narrowed...
        assert compiled.is_indexed        # ...but the candidate fed selection

    def test_wildcard_produces_no_candidate(self, indexed):
        compiled, report = self.rule_reports(
            indexed, "select guide.#.comment<cre at T>")
        assert not report.fired
        assert not compiled.is_indexed


class TestIndexSelection:
    def test_selects_annotation_filter_when_index_present(self, indexed):
        compiled = indexed._compile(indexed.parse(
            "select guide.<add at T>restaurant where T < 4Jan97"))
        assert isinstance(compiled.root, AnnotationFilter)
        report = {r.name: r for r in compiled.passes}["index-selection"]
        assert report.fired
        assert report.note == compiled.index_plan.describe()

    def test_no_index_means_no_selection(self, chorel):
        compiled = chorel._compile(chorel.parse(
            "select guide.<add at T>restaurant where T < 4Jan97"))
        assert not compiled.is_indexed
        report = {r.name: r for r in compiled.passes}["index-selection"]
        assert not report.fired

    def test_unfoldable_where_falls_back(self, indexed):
        compiled = indexed._compile(indexed.parse(
            'select N from guide.restaurant R, R.name N '
            'where R.<add at T>comment = "need info"'))
        assert not compiled.is_indexed


class TestFoldInterval:
    def plan(self):
        return IndexPlan(kind="add", labels=("restaurant",),
                         root_name="guide", at_var="T", from_var=None,
                         to_var=None, select=())

    def ts(self, text):
        return parse_timestamp(text)

    def test_bounds_and_inclusivity(self):
        plan = self.plan()
        condition = And(Comparison(VarRef("T"), ">", Literal(self.ts("1Jan97"))),
                        Comparison(VarRef("T"), "<=", Literal(self.ts("8Jan97"))))
        assert fold_interval(condition, plan, {})
        assert plan.low == self.ts("1Jan97") and not plan.include_low
        assert plan.high == self.ts("8Jan97") and plan.include_high

    def test_flipped_operand_order(self):
        plan = self.plan()
        condition = Comparison(Literal(self.ts("5Jan97")), "<=", VarRef("T"))
        assert fold_interval(condition, plan, {})
        assert plan.low == self.ts("5Jan97") and plan.include_low
        assert plan.high is POS_INF

    def test_equality_is_degenerate_interval(self):
        plan = self.plan()
        assert fold_interval(
            Comparison(VarRef("T"), "=", Literal(self.ts("5Jan97"))), plan, {})
        assert plan.low == plan.high == self.ts("5Jan97")

    def test_foreign_variable_refuses(self):
        plan = self.plan()
        assert not fold_interval(
            Comparison(VarRef("U"), ">", Literal(self.ts("5Jan97"))), plan, {})
        assert plan.low is NEG_INF

    def test_polling_time_variable_resolves(self):
        plan = self.plan()
        polling = {0: self.ts("5Jan97")}
        assert fold_interval(
            Comparison(VarRef("T"), ">=", TimeVar(0)), plan, polling)
        assert plan.low == self.ts("5Jan97")


class TestPredicateReorder:
    def test_pure_filter_hoisted(self, chorel):
        compiled = chorel._compile(chorel.parse(
            'select N from guide.restaurant R, R.name N '
            'where guide.restaurant.price < 20.5 and N = "Janta"'))
        report = {r.name: r for r in compiled.passes}["predicate-reorder"]
        assert report.fired
        assert report.note == "hoisted 1 pure filter(s)"
        predicate = compiled.root.child
        assert isinstance(predicate, Predicate)
        condition = predicate.condition
        # The pure N = "Janta" conjunct now leads the conjunction.
        assert isinstance(condition, And)
        assert str(condition.left) == 'N = "Janta"'

    def test_already_ordered_does_not_fire(self, chorel):
        compiled = chorel._compile(chorel.parse(
            'select N from guide.restaurant R, R.name N '
            'where N = "Janta" and guide.restaurant.price < 20.5'))
        report = {r.name: r for r in compiled.passes}["predicate-reorder"]
        assert not report.fired

    def test_where_bound_variables_are_not_pure(self, chorel):
        # OV is bound by the where clause's own annotation walk, so the
        # OV-conjunct must stay behind the path conjunct that binds it.
        compiled = chorel._compile(chorel.parse(
            "select R from guide.restaurant R "
            "where R.price<upd from OV> != 30 and OV = 10"))
        report = {r.name: r for r in compiled.passes}["predicate-reorder"]
        assert not report.fired

    def test_reorder_preserves_results(self, chorel, guide_doem):
        query = ('select N from guide.restaurant R, R.name N '
                 'where guide.restaurant.price < 20.5 and N = "Janta"')
        legacy = ChorelEngine(guide_doem, name="guide", use_planner=False)
        assert list(map(str, chorel.run(query))) == \
            list(map(str, legacy.run(query)))


class TestRuleIsolation:
    """compile_query(rules=[...]) isolates a single pass."""

    def test_single_rule_pipeline_reports_one_pass(self, chorel):
        parsed = chorel.parse("select guide.restaurant")
        compiled = compile_query(parsed, chorel._evaluator,
                                 context=chorel._compile_context(None),
                                 rules=[PredicateReorder()])
        assert [r.name for r in compiled.passes] == ["predicate-reorder"]

    def test_selection_without_pushdown_is_inert(self, indexed):
        # IndexSelection depends on the pushdown pass's candidate.
        parsed = indexed.parse("select guide.<add at T>restaurant")
        compiled = compile_query(parsed, indexed._evaluator,
                                 context=indexed._compile_context(None),
                                 rules=[IndexSelection()])
        assert not compiled.is_indexed

    def test_pushdown_then_selection_is_sufficient(self, indexed):
        parsed = indexed.parse("select guide.<add at T>restaurant")
        compiled = compile_query(parsed, indexed._evaluator,
                                 context=indexed._compile_context(None),
                                 rules=[AnnotationLiteralPushdown(),
                                        IndexSelection()])
        assert compiled.is_indexed


class TestExchange:
    def test_insert_exchange_shape(self, chorel):
        compiled = chorel._compile(chorel.parse(
            'select N from guide.restaurant R, R.name N where N != "x"'))
        rewritten = insert_exchange(compiled.root)
        assert isinstance(rewritten, Project)
        exchange = rewritten.child
        assert isinstance(exchange, Exchange)
        assert chain_shapes(exchange.child) == ["PathExpand", "Scan"]
        # Detached stages: the second PathExpand, then the Predicate.
        assert [type(stage).__name__ for stage in exchange.stages] == \
            ["PathExpand", "Predicate"]
        assert all(not stage.children() for stage in exchange.stages)

    def test_single_item_query_has_empty_stages(self, chorel):
        compiled = chorel._compile(chorel.parse("select guide.restaurant"))
        rewritten = insert_exchange(compiled.root)
        assert isinstance(rewritten.child, Exchange)
        assert rewritten.child.stages == ()

    def test_indexed_plan_is_not_exchanged(self, indexed):
        compiled = indexed._compile(indexed.parse(
            "select guide.<add>restaurant"))
        assert insert_exchange(compiled.root) is None

    def test_exchange_render(self, chorel):
        compiled = chorel._compile(chorel.parse(
            "select N from guide.restaurant R, R.name N"))
        text = render(insert_exchange(compiled.root))
        assert "Exchange stages=1" in text


class TestExplain:
    def test_explain_lists_every_pass(self, indexed):
        compiled = indexed._compile(indexed.parse(
            "select guide.<add at 5Jan97>restaurant"))
        text = compiled.explain()
        assert text.splitlines()[0].startswith("AnnotationFilter ")
        assert "passes:" in text
        for name in ("virtual-at-expansion", "annotation-literal-pushdown",
                     "index-selection", "predicate-reorder"):
            assert name in text
        fired = [line for line in text.splitlines()
                 if line.strip().startswith("annotation-literal-pushdown")]
        assert fired and "fired" in fired[0]

    def test_engine_compile_sets_last_compiled(self, chorel):
        compiled = chorel.compile("select guide.restaurant")
        assert chorel.last_compiled is compiled

    def test_scan_describe(self):
        assert Scan().describe() == "Scan"
        assert render(Scan()) == "Scan"
