"""Golden-file tests for the optimizer's EXPLAIN output.

One golden per planner behavior worth pinning -- index selection over a
bounded interval, the ``<upd ... from ... to ...>`` row shape, the
degenerate literal-pin interval, predicate reordering, the wildcard
fallback that must *not* select the index, virtual ``<at t[0]>``
expansion against the polling table, and the cross-time range rewrite
in both physical strategies (a narrow range pinned to ``index-scan``, a
wide and an open-ended one pinned to ``checkpoint-replay``, plus the
``VersionJoin`` terminal for ``<at [a..b]>``).  A rule change that
alters the optimized tree or the pass-firing report shows up as a
reviewable diff, not a silent plan shift.

To update a golden intentionally, delete it and re-run with
``REGEN_GOLDENS=1``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import ChorelEngine, IndexedChorelEngine, build_doem
from tests.conftest import make_guide_db, make_guide_history

GOLDENS = Path(__file__).resolve().parent / "goldens"

# name -> (query, polling_times)
CASES = {
    "indexed_add_interval": (
        "select guide.<add at T>restaurant where T < 4Jan97", None),
    "indexed_upd_from_to": (
        "select T, OV, NV from guide.restaurant.price"
        "<upd at T from OV to NV> where T >= 1Jan97", None),
    "literal_pin": (
        "select guide.<add at 5Jan97>restaurant", None),
    "predicate_reorder": (
        'select N from guide.restaurant R, R.name N '
        'where guide.restaurant.price < 20.5 and N = "Janta"', None),
    "wildcard_fallback": (
        "select guide.#.comment<cre at T>", None),
    "virtual_at_polling": (
        "select guide.<add at t[0]>restaurant", {0: "5Jan97"}),
    # Cross-time range rewrite: narrow ranges take the merged
    # timestamp-index scan, ranges wider than the replay threshold (and
    # open-ended ones) take checkpoint-anchored history replay.
    "range_narrow_index": (
        "select T from guide.restaurant.price"
        "<changed at T in [1Jan97..5Jan97]>", None),
    "range_wide_replay": (
        "select X, T from guide.restaurant"
        "<changed at T in [1Jan97..1Mar97]> X", None),
    "range_last_change": (
        "select X, T from guide.restaurant <last-change at T> X", None),
    "range_versions_join": (
        "select X from guide.restaurant.price <at [1Jan97..9Jan97]> X",
        None),
}


@pytest.fixture(scope="module")
def doem():
    return build_doem(make_guide_db(), make_guide_history())


def explain(name: str, doem) -> str:
    query, polling = CASES[name]
    engine = IndexedChorelEngine(doem, name="guide")
    if polling:
        engine.set_polling_times(polling)
    compiled = engine.compile(query)
    return f"query:\n{query}\n\nexplain:\n{compiled.explain()}\n"


@pytest.mark.parametrize("name", sorted(CASES))
def test_explain_matches_golden(name, doem):
    actual = explain(name, doem)
    path = GOLDENS / f"{name}.txt"
    if os.environ.get("REGEN_GOLDENS") and not path.exists():
        path.write_text(actual, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, \
        f"plan drift for <{name}>; diff against {path}"


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_queries_still_evaluate(name, doem):
    """The pinned plans are executable, and agree with the naive engine."""
    query, polling = CASES[name]
    naive = ChorelEngine(doem, name="guide")
    indexed = IndexedChorelEngine(doem, name="guide")
    if polling:
        naive.set_polling_times(polling)
        indexed.set_polling_times(polling)
    assert sorted(map(str, indexed.run(query))) == \
        sorted(map(str, naive.run(query)))


def test_every_case_has_a_golden():
    # analyze_*.txt belong to the EXPLAIN ANALYZE suite
    # (test_analyze_goldens.py), which keeps its own completeness check.
    stems = {path.stem for path in GOLDENS.glob("*.txt")
             if not path.stem.startswith("analyze_")}
    assert stems == set(CASES), \
        "keep one golden file per pinned planner behavior"
