"""Planned execution is the legacy evaluator, observably.

Every engine still carries its pre-planner single-pass evaluator behind
``use_planner=False``; this suite treats it as the differential oracle
and asserts the compile -> optimize -> execute pipeline returns **row-
and order-identical** results on all four engines, serially and through
the sharding ``Exchange`` -- over the same randomized worlds the
index-differential harness trusts (:mod:`tests.test_differential_index`).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    ParallelExecutor,
    TranslatingChorelEngine,
    TranslationError,
)
from tests.test_differential_index import make_world, world_queries

LOREL_QUERIES = [
    "select root.item",
    "select X, N from root.item X, X.name N",
    "select root.item where root.item.price < 500",
    "select X from root.link X",
    "select root.#.name",
    'select X from root.item X where X.name like "%a%"',
]

RELAXED = settings(max_examples=8, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def texts(result) -> list[str]:
    """Rows as strings, in engine order -- order identity is asserted."""
    return [str(row) for row in result]


def outcome(engine, query):
    """(rows, error-type) so translation failures compare symmetrically."""
    try:
        return texts(engine.run(query)), None
    except TranslationError as error:
        return None, type(error).__name__


class TestSerialEquivalence:
    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_chorel_native_and_indexed(self, seed):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in (ChorelEngine, IndexedChorelEngine):
            planned = engine_cls(doem, name="root")
            legacy = engine_cls(doem, name="root", use_planner=False)
            for query in queries:
                assert texts(planned.run(query)) == \
                    texts(legacy.run(query)), (engine_cls.__name__, query)

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_translating(self, seed):
        _, history, doem = make_world(seed)
        planned = TranslatingChorelEngine(doem, name="root")
        legacy = TranslatingChorelEngine(doem, name="root",
                                         use_planner=False)
        for query in world_queries(history):
            assert outcome(planned, query) == outcome(legacy, query), query

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_lorel(self, seed):
        db, _, _ = make_world(seed)
        planned = LorelEngine(db, name="root")
        legacy = LorelEngine(db, name="root", use_planner=False)
        for query in LOREL_QUERIES:
            assert texts(planned.run(query)) == \
                texts(legacy.run(query)), query

    def test_indexed_pushdown_still_fires_under_planner(self):
        _, history, doem = make_world(7)
        engine = IndexedChorelEngine(doem, name="root")
        for query in world_queries(history):
            engine.run(query)
        assert engine.stats.indexed_queries > 0
        assert engine.stats.fallback_queries > 0


class TestShardedEquivalence:
    """The Exchange operator replays serial enumeration exactly."""

    @given(seed=st.integers(min_value=0, max_value=99),
           workers=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chorel_sharded_matches_legacy_serial(self, seed, workers):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in (ChorelEngine, IndexedChorelEngine):
            planned = engine_cls(doem, name="root")
            legacy = engine_cls(doem, name="root", use_planner=False)
            with ParallelExecutor(planned, max_workers=workers) as executor:
                for query in queries:
                    assert texts(executor.run(query)) == \
                        texts(legacy.run(query)), (engine_cls.__name__, query)

    @given(seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lorel_sharded_matches_legacy_serial(self, seed):
        db, _, _ = make_world(seed)
        planned = LorelEngine(db, name="root")
        legacy = LorelEngine(db, name="root", use_planner=False)
        with ParallelExecutor(planned, max_workers=3) as executor:
            for query in LOREL_QUERIES:
                assert texts(executor.run(query)) == \
                    texts(legacy.run(query)), query

    @pytest.mark.parametrize("seed", [0, 5, 13])
    def test_translating_sharded(self, seed):
        _, history, doem = make_world(seed)
        planned = TranslatingChorelEngine(doem, name="root")
        legacy = TranslatingChorelEngine(doem, name="root",
                                         use_planner=False)
        queries = [query for query in world_queries(history)
                   if outcome(legacy, query)[1] is None]
        with ParallelExecutor(planned, max_workers=3) as executor:
            for query in queries:
                assert texts(executor.run(query)) == \
                    texts(legacy.run(query)), query

    @pytest.mark.parametrize("seed", [2, 9])
    def test_batched_matches_serial(self, seed):
        _, history, doem = make_world(seed)
        engine = IndexedChorelEngine(doem, name="root")
        legacy = IndexedChorelEngine(doem, name="root", use_planner=False)
        queries = world_queries(history)
        with ParallelExecutor(engine, max_workers=3) as executor:
            batched = executor.run_many(queries)
        for query, result in zip(queries, batched):
            assert texts(result) == texts(legacy.run(query)), query
