"""ANALYZE observes; it must not perturb.

The property this suite pins: for every engine, serial or sharded
(threads and processes), ``run(query, analyze=True)`` returns rows
**identical and identically ordered** to the uninstrumented run -- and
the collected stats tree is internally consistent (each attached
parent's ``rows_in`` equals its child's ``rows_out``, predicate tallies
cover every judged row).  Randomized worlds come from the same generator
the index-differential harness trusts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    ParallelExecutor,
    TranslatingChorelEngine,
)
from tests.plan.test_analyze import children_of
from tests.plan.test_planner_equivalence import (
    LOREL_QUERIES,
    RELAXED,
    outcome,
    texts,
)
from tests.test_differential_index import make_world, world_queries

CHOREL_ENGINES = (ChorelEngine, IndexedChorelEngine)


def check_stats(engine, query) -> None:
    """The internal-consistency invariants on a collected stats tree."""
    stats = engine.last_compiled.runtime
    assert stats is not None, (type(engine).__name__, query)
    for parent, child in children_of(stats):
        assert parent.rows_in == child.rows_out, \
            (type(engine).__name__, query, parent.op, child.op)
    for op in stats.ops:
        if op.op.startswith("Predicate") and not op.detached:
            assert op.vectorized_rows + op.fallback_rows == op.rows_in, \
                (type(engine).__name__, query, op.op)
        assert op.wall_seconds >= 0.0


class TestSerialAnalyzeEquivalence:
    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_chorel_native_and_indexed(self, seed):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in CHOREL_ENGINES:
            plain = engine_cls(doem, name="root")
            analyzed = engine_cls(doem, name="root")
            for query in queries:
                expected = texts(plain.run(query))
                assert texts(analyzed.run(query, analyze=True)) == \
                    expected, (engine_cls.__name__, query)
                check_stats(analyzed, query)

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_lorel(self, seed):
        db, _, _ = make_world(seed)
        plain = LorelEngine(db, name="root")
        analyzed = LorelEngine(db, name="root")
        for query in LOREL_QUERIES:
            expected = texts(plain.run(query))
            assert texts(analyzed.run(query, analyze=True)) == \
                expected, query
            check_stats(analyzed, query)

    @given(seed=st.integers(min_value=0, max_value=99))
    @RELAXED
    def test_translating(self, seed):
        _, history, doem = make_world(seed)
        plain = TranslatingChorelEngine(doem, name="root")
        analyzed = TranslatingChorelEngine(doem, name="root")

        def analyzed_outcome(query):
            from repro import TranslationError
            try:
                return texts(analyzed.run(query, analyze=True)), None
            except TranslationError as error:
                return None, type(error).__name__

        for query in world_queries(history):
            expected = outcome(plain, query)
            assert analyzed_outcome(query) == expected, query
            if expected[1] is None:
                check_stats(analyzed, query)


class TestShardedAnalyzeEquivalence:
    @given(seed=st.integers(min_value=0, max_value=99),
           workers=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chorel_thread_sharded(self, seed, workers):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        for engine_cls in CHOREL_ENGINES:
            plain = engine_cls(doem, name="root")
            engine = engine_cls(doem, name="root")
            with ParallelExecutor(engine, max_workers=workers) as executor:
                for query in queries:
                    expected = texts(plain.run(query))
                    assert texts(executor.run(query, analyze=True)) == \
                        expected, (engine_cls.__name__, query)
                    stats = engine.last_compiled.runtime
                    assert stats is not None

    @pytest.mark.parametrize("seed", [1, 8])
    def test_chorel_process_sharded(self, seed):
        """Stage stats shipped back through the telemetry payload keep
        the rows identical and the merged tree populated."""
        _, history, doem = make_world(seed)
        plain = ChorelEngine(doem, name="root")
        engine = ChorelEngine(doem, name="root")
        queries = world_queries(history)
        with ParallelExecutor(engine, processes=True,
                              max_workers=2) as executor:
            for query in queries:
                expected = texts(plain.run(query))
                assert texts(executor.run(query, analyze=True)) == \
                    expected, query
                stats = engine.last_compiled.runtime
                assert stats is not None
                assert stats.ops[0].rows_out == len(expected), query
