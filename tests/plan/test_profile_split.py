"""``profile=True`` separates compile time from execute time.

The bugfix under test: profiles used to report only a total; now the
:class:`~repro.obs.profile.QueryProfile` splits planning cost
(``compile_seconds``: the ``plan.compile`` span, or ``chorel.optimize``
which encloses it on the indexed engine, plus ``chorel.translate``) from
operator cost (``execute_seconds``: ``lorel.eval`` +
``chorel.index_scan``) -- in ``to_dict``/JSON and in the rendered
report -- and attaches the optimized plan tree.
"""

import json

import pytest

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    TranslatingChorelEngine,
)
from tests.conftest import make_guide_db


@pytest.mark.parametrize("engine_cls", [
    ChorelEngine, IndexedChorelEngine, TranslatingChorelEngine])
def test_profile_splits_compile_and_execute(engine_cls, guide_doem):
    engine = engine_cls(guide_doem, name="guide")
    engine.run("select guide.<add at T>restaurant where T < 4Jan97",
               profile=True)
    profile = engine.last_profile
    data = profile.to_dict()
    assert data["compile_seconds"] > 0.0
    assert data["execute_seconds"] > 0.0
    assert data["compile_seconds"] + data["execute_seconds"] \
        <= data["total_seconds"]


def test_lorel_profile_split():
    engine = LorelEngine(make_guide_db(), name="guide")
    engine.run("select guide.restaurant", profile=True)
    data = engine.last_profile.to_dict()
    assert data["compile_seconds"] > 0.0
    assert data["execute_seconds"] > 0.0


def test_profile_carries_plan_tree(guide_doem):
    engine = IndexedChorelEngine(guide_doem, name="guide")
    engine.run("select guide.<add at 5Jan97>restaurant", profile=True)
    profile = engine.last_profile
    assert profile.plan_tree is not None
    assert profile.plan_tree.startswith("AnnotationFilter ")
    assert "passes:" in profile.plan_tree


def test_render_includes_plan_tree_and_split(guide_doem):
    engine = IndexedChorelEngine(guide_doem, name="guide")
    engine.run("select guide.<add at 5Jan97>restaurant", profile=True)
    report = engine.last_profile.render()
    assert "optimized plan:" in report
    assert "compile " in report and "execute " in report
    assert "annotation-literal-pushdown" in report


def test_legacy_mode_has_no_plan_tree(guide_doem):
    engine = ChorelEngine(guide_doem, name="guide", use_planner=False)
    engine.run("select guide.restaurant", profile=True)
    assert engine.last_profile.plan_tree is None


def test_profile_json_round_trips(guide_doem):
    engine = IndexedChorelEngine(guide_doem, name="guide")
    engine.run("select guide.<add>restaurant", profile=True)
    data = json.loads(engine.last_profile.to_json())
    for key in ("compile_seconds", "execute_seconds", "plan_tree"):
        assert key in data


def test_profiled_rows_equal_unprofiled(guide_doem):
    engine = IndexedChorelEngine(guide_doem, name="guide")
    query = "select guide.<add at T>restaurant where T < 4Jan97"
    plain = list(map(str, engine.run(query)))
    profiled = list(map(str, engine.run(query, profile=True)))
    assert profiled == plain
