"""EXPLAIN ANALYZE: per-operator stats, fingerprints, cardinality feedback.

The collector (:mod:`repro.plan.analyze`) claims that an analyzed
execution returns identical rows while accounting every operator -- rows
and batches in/out, wall time, vectorized-vs-fallback predicate rows --
and that the stats tree is *internally consistent*: what a parent pulls
in is exactly what its child emitted.  This suite pins those claims, the
fingerprint's stability, and the feedback loop (second analyzed run of a
fingerprint estimates from recorded actuals, rendered ``est*``).
"""

from __future__ import annotations

import pytest

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    ParallelExecutor,
    TranslatingChorelEngine,
    build_doem,
)
from repro.plan.analyze import (
    CardinalityFeedback,
    cardinality_feedback,
    estimate_rows,
    plan_fingerprint,
)
from tests.conftest import make_guide_db, make_guide_history

CHAIN_QUERY = ("select T, R from guide.<add at T>restaurant R "
               "where T >= 1Jan97")
INDEXED_QUERY = "select guide.<add at T>restaurant where T < 4Jan97"


@pytest.fixture()
def doem():
    return build_doem(make_guide_db(), make_guide_history())


@pytest.fixture(autouse=True)
def _fresh_feedback():
    cardinality_feedback().reset()
    yield
    cardinality_feedback().reset()


def analyzed_stats(engine, query):
    result = engine.run(query, analyze=True)
    return result, engine.last_compiled.runtime


def children_of(stats):
    """(parent, child) OpStats pairs along the attached (non-detached)
    spine: each parent's direct child is the next op one level deeper."""
    pairs = []
    for index, op in enumerate(stats.ops):
        if op.detached:
            continue
        for later in stats.ops[index + 1:]:
            if later.depth == op.depth + 1 and not later.detached:
                pairs.append((op, later))
            if later.depth <= op.depth:
                break
    return pairs


class TestOperatorAccounting:
    def test_rows_flow_is_consistent(self, doem):
        """child.rows_out == parent.rows_in, measured on a real run."""
        engine = ChorelEngine(doem, name="guide")
        result, stats = analyzed_stats(engine, CHAIN_QUERY)
        assert stats.ops, "no operators collected"
        pairs = children_of(stats)
        assert pairs, "chain query should have parent/child operators"
        for parent, child in pairs:
            assert parent.rows_in == child.rows_out, (parent.op, child.op)
        # The root operator's output is the result itself.
        assert stats.ops[0].rows_out == len(result)

    def test_identical_rows_and_iterator_model(self, doem):
        for batch_size in (None, 0):
            kwargs = {} if batch_size is None else {"batch_size": batch_size}
            plain = ChorelEngine(doem, name="guide", **kwargs)
            analyzed = ChorelEngine(doem, name="guide", **kwargs)
            expected = [str(row) for row in plain.run(CHAIN_QUERY)]
            result = analyzed.run(CHAIN_QUERY, analyze=True)
            assert [str(row) for row in result] == expected
            assert analyzed.last_compiled.runtime.result_rows == len(expected)

    def test_predicate_rows_are_tallied(self, doem):
        engine = ChorelEngine(doem, name="guide")
        _, stats = analyzed_stats(engine, CHAIN_QUERY)
        predicates = [op for op in stats.ops
                      if op.op.startswith("Predicate")]
        assert predicates
        for op in predicates:
            assert op.vectorized_rows + op.fallback_rows == op.rows_in, op.op

    def test_every_engine_collects(self, doem):
        engines = [ChorelEngine(doem, name="guide"),
                   IndexedChorelEngine(doem, name="guide"),
                   TranslatingChorelEngine(doem, name="guide"),
                   LorelEngine(make_guide_db(), name="guide")]
        queries = [CHAIN_QUERY, CHAIN_QUERY, CHAIN_QUERY,
                   "select guide.restaurant.name"]
        for engine, query in zip(engines, queries):
            result = engine.run(query, analyze=True)
            stats = engine.last_compiled.runtime
            assert stats is not None, type(engine).__name__
            assert stats.ops[0].rows_out == len(result) or \
                stats.result_rows == len(result)
            assert "rows" in stats.render()

    def test_indexed_pushdown_is_accounted(self, doem):
        engine = IndexedChorelEngine(doem, name="guide")
        result, stats = analyzed_stats(engine, INDEXED_QUERY)
        assert engine.last_compiled.is_indexed
        [op] = [op for op in stats.ops
                if op.op.startswith("AnnotationFilter")]
        assert op.rows_out == len(result)

    def test_uninstrumented_run_leaves_no_runtime(self, doem):
        engine = ChorelEngine(doem, name="guide")
        engine.run(CHAIN_QUERY)
        assert engine.last_compiled.runtime is None
        with pytest.raises(ValueError, match="analyze=True"):
            engine.last_compiled.explain(analyze=True)

    def test_analyze_needs_the_planner(self, doem):
        legacy = ChorelEngine(doem, name="guide", use_planner=False)
        with pytest.raises(ValueError, match="planner"):
            legacy.run(CHAIN_QUERY, analyze=True)

    def test_profile_and_analyze_are_exclusive(self, doem):
        engine = ChorelEngine(doem, name="guide")
        with pytest.raises(ValueError, match="mutually exclusive"):
            engine.run(CHAIN_QUERY, profile=True, analyze=True)


class TestFingerprint:
    def test_stable_across_compiles(self, doem):
        first = ChorelEngine(doem, name="guide").compile(CHAIN_QUERY)
        second = ChorelEngine(doem, name="guide").compile(CHAIN_QUERY)
        assert first.fingerprint
        assert first.fingerprint == second.fingerprint

    def test_distinguishes_queries(self, doem):
        engine = ChorelEngine(doem, name="guide")
        assert engine.compile(CHAIN_QUERY).fingerprint != \
            engine.compile("select guide.restaurant.name").fingerprint

    def test_matches_lowered_tree_hash(self, doem):
        engine = ChorelEngine(doem, name="guide")
        compiled = engine.compile(CHAIN_QUERY)
        assert len(compiled.fingerprint) == 12
        assert compiled.fingerprint in compiled.explain(analyze=False) or \
            compiled.fingerprint  # explain() need not print it; length pins

    def test_fingerprint_survives_sharding(self, doem):
        """The Exchange rewrite happens at execution; the fingerprint is a
        compile-time property, so serial and sharded agree."""
        serial = ChorelEngine(doem, name="guide")
        serial.run(CHAIN_QUERY, analyze=True)
        sharded = ChorelEngine(doem, name="guide")
        with ParallelExecutor(sharded, max_workers=2) as executor:
            executor.run(CHAIN_QUERY, analyze=True)
        assert serial.last_compiled.fingerprint == \
            sharded.last_compiled.fingerprint

    def test_plan_fingerprint_is_render_hash(self, doem):
        engine = ChorelEngine(doem, name="guide")
        compiled = engine.compile(CHAIN_QUERY)
        assert plan_fingerprint(compiled.root) != ""


class TestCardinalityFeedback:
    def test_second_run_estimates_from_actuals(self, doem):
        engine = ChorelEngine(doem, name="guide")
        _, first = analyzed_stats(engine, CHAIN_QUERY)
        assert all(op.est_source == "heuristic" for op in first.ops)
        _, second = analyzed_stats(engine, CHAIN_QUERY)
        assert all(op.est_source == "feedback" for op in second.ops)
        for op in second.ops:
            by_op = {o.op: o.rows_out for o in first.ops}
            assert op.est_rows == by_op[op.op]
        assert "est*" in second.render()
        assert "est*" not in first.render()

    def test_feedback_keyed_by_shape(self):
        store = CardinalityFeedback(capacity=2)
        store.record("f1", ("Scan",), (5,))
        assert store.lookup("f1", ("Scan",)) == (5,)
        assert store.lookup("f1", ("Scan", "Predicate x")) is None
        assert store.lookup("f2", ("Scan",)) is None

    def test_lru_eviction(self):
        store = CardinalityFeedback(capacity=2)
        store.record("a", ("Scan",), (1,))
        store.record("b", ("Scan",), (2,))
        store.lookup("a", ("Scan",))  # refresh a
        store.record("c", ("Scan",), (3,))
        assert store.lookup("b", ("Scan",)) is None
        assert store.lookup("a", ("Scan",)) == (1,)
        with pytest.raises(ValueError):
            CardinalityFeedback(capacity=0)

    def test_misestimates_are_surfaced(self, doem):
        engine = ChorelEngine(doem, name="guide")
        _, stats = analyzed_stats(engine, CHAIN_QUERY)
        for op in stats.misestimates(threshold=1.0):
            assert op.misestimate_factor() >= 1.0

    def test_estimate_rows_heuristics(self, doem):
        engine = ChorelEngine(doem, name="guide")
        compiled = engine.compile(CHAIN_QUERY)
        estimates = estimate_rows(compiled.root)
        assert all(value >= 1 for value in estimates.values())


class TestShardedAnalyze:
    @pytest.mark.parametrize("processes", [False, True])
    def test_merged_totals_match_serial(self, doem, processes):
        serial = ChorelEngine(doem, name="guide")
        expected, serial_stats = analyzed_stats(serial, CHAIN_QUERY)
        engine = ChorelEngine(doem, name="guide")
        with ParallelExecutor(engine, max_workers=2,
                              processes=processes,
                              min_shard_size=1) as executor:
            result = executor.run(CHAIN_QUERY, analyze=True)
        assert [str(r) for r in result] == [str(r) for r in expected]
        stats = engine.last_compiled.runtime
        assert stats is not None
        serial_by: dict[str, int] = {}
        for op in serial_stats.ops:
            serial_by[op.op] = serial_by.get(op.op, 0) + op.rows_out
        for op in stats.ops:
            if op.op in serial_by and not op.op.startswith("Scan"):
                assert op.rows_out == serial_by[op.op], op.op
        exchanges = [op for op in stats.ops
                     if op.op.startswith("Exchange")]
        if exchanges:  # sharding engaged: stage stats were merged
            detached = [op for op in stats.ops if op.detached]
            assert detached
            assert all(op.rows_in or op.rows_out for op in detached)

    def test_sharded_to_dict_round_trips(self, doem):
        engine = ChorelEngine(doem, name="guide")
        with ParallelExecutor(engine, max_workers=2,
                              min_shard_size=1) as executor:
            executor.run(CHAIN_QUERY, analyze=True)
        payload = engine.last_compiled.runtime.to_dict()
        assert payload["fingerprint"] == engine.last_compiled.fingerprint
        assert payload["rows"] == payload["ops"][0]["rows_out"]
        import json
        json.dumps(payload)  # JSON-clean
