"""Tests for the ECA trigger language (Section 7 future work)."""

import pytest

from repro import (
    COMPLEX,
    Activation,
    AddArc,
    CreNode,
    DOEMDatabase,
    Event,
    OEMDatabase,
    QueryError,
    RemArc,
    Rule,
    TriggerManager,
    UpdNode,
    parse_timestamp,
)
from tests.conftest import make_guide_db, make_guide_history


@pytest.fixture
def manager():
    return TriggerManager(DOEMDatabase(make_guide_db()), name="guide")


class TestEventMatching:
    def test_kind_matching(self):
        assert Event("update").matches(UpdNode("n", 5))
        assert not Event("update").matches(CreNode("n", 5))
        assert Event("add").matches(AddArc("p", "l", "c"))
        assert Event("remove").matches(RemArc("p", "l", "c"))

    def test_label_pattern(self):
        event = Event("add", label="comment%")
        assert event.matches(AddArc("p", "comment", "c"))
        assert event.matches(AddArc("p", "comments", "c"))
        assert not event.matches(AddArc("p", "name", "c"))

    def test_value_pattern(self):
        event = Event("update", value="2%")
        assert event.matches(UpdNode("n", 20))
        assert event.matches(UpdNode("n", "2nd"))
        assert not event.matches(UpdNode("n", 30))

    def test_old_value_pattern(self):
        event = Event("update", old_value="10")
        assert event.matches(UpdNode("n", 20), old_value=10)
        assert not event.matches(UpdNode("n", 20), old_value=15)

    def test_bad_combinations_rejected(self):
        with pytest.raises(QueryError):
            Event("nonsense")
        with pytest.raises(QueryError):
            Event("update", label="x")
        with pytest.raises(QueryError):
            Event("add", value="x")
        with pytest.raises(QueryError):
            Event("create", old_value="x")

    def test_str(self):
        assert "add" in str(Event("add", label="price"))


class TestRuleFiring:
    def test_unconditional_rule(self, manager):
        fired = []
        manager.on("any-update", Event("update"), fired.append)
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert len(fired) == 1
        activation = fired[0]
        assert activation.subject == "n1"
        assert activation.at == parse_timestamp("1Jan97")
        assert "any-update" in str(activation)

    def test_condition_filters(self, manager):
        fired = []
        manager.on("big-price", Event("update"), fired.append,
                   condition="select NEW where NEW > 50")
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert fired == []
        manager.fold("2Jan97", [UpdNode("n1", 60)])
        assert len(fired) == 1

    def test_condition_navigates_from_parent(self, manager):
        fired = []
        manager.on("janta-comment", Event("add", label="comment"),
                   fired.append,
                   condition='select N from PARENT.name N where N = "Janta"')
        manager.fold("1Jan97", [CreNode("c1", "nice"),
                                AddArc("r2", "comment", "c1")])   # Janta
        manager.fold("2Jan97", [CreNode("c2", "nice"),
                                AddArc("r1", "comment", "c2")])   # Bangkok
        assert len(fired) == 1
        assert fired[0].subject == "c1"

    def test_condition_sees_history(self, manager):
        """Conditions are Chorel: they can consult past annotations."""
        fired = []
        manager.on("second-update", Event("update"), fired.append,
                   condition="select T1, T2 from NEW<upd at T1>, "
                             "NEW<upd at T2> where T1 < T2")
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert fired == []            # only one update so far
        manager.fold("2Jan97", [UpdNode("n1", 30)])
        assert len(fired) == 1        # now there are two

    def test_condition_pins_to_event_time_via_t0(self, manager):
        """t[0] in a condition is the fold timestamp, so a rule can look
        at exactly the update that fired it (not older ones)."""
        rows = []
        manager.on("hike", Event("update"),
                   lambda a: rows.append(a.condition_rows.first()),
                   condition="select OV, NV from "
                             "NEW<upd at T from OV to NV> "
                             "where NV > OV and T = t[0]")
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        manager.fold("2Jan97", [UpdNode("n1", 30)])
        assert [(r["old-value"], r["new-value"]) for r in rows] == \
            [(10, 20), (20, 30)]

    def test_condition_rows_passed_to_action(self, manager):
        seen_rows = []
        manager.on("with-rows", Event("add", label="restaurant"),
                   lambda a: seen_rows.extend(a.condition_rows),
                   condition="select N from NEW.name N")
        manager.fold("1Jan97", [CreNode("r9", COMPLEX),
                                CreNode("r9n", "Zibibbo"),
                                AddArc("guide", "restaurant", "r9"),
                                AddArc("r9", "name", "r9n")])
        assert len(seen_rows) == 1

    def test_disabled_rule_does_not_fire(self, manager):
        fired = []
        rule = manager.on("off", Event("update"), fired.append)
        rule.enabled = False
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert fired == []
        rule.enabled = True
        manager.fold("2Jan97", [UpdNode("n1", 30)])
        assert len(fired) == 1

    def test_multiple_rules_fire_in_registration_order(self, manager):
        order = []
        manager.on("first", Event("update"), lambda a: order.append("first"))
        manager.on("second", Event("update"), lambda a: order.append("second"))
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert order == ["first", "second"]

    def test_fired_count_tracked(self, manager):
        rule = manager.on("counting", Event("update"), lambda a: None)
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        manager.fold("2Jan97", [UpdNode("n1", 30)])
        assert rule.fired_count == 2

    def test_rem_event_bindings(self, manager):
        fired = []
        manager.on("lost", Event("remove", label="parking"), fired.append)
        manager.fold("8Jan97", [RemArc("r2", "parking", "n7")])
        assert fired[0].bindings == {"NEW": "n7", "PARENT": "r2"}


class TestManagerMechanics:
    def test_duplicate_rule_name_rejected(self, manager):
        manager.on("dup", Event("update"), lambda a: None)
        with pytest.raises(QueryError):
            manager.on("dup", Event("create"), lambda a: None)

    def test_remove_rule(self, manager):
        manager.on("gone", Event("update"), lambda a: None)
        manager.remove_rule("gone")
        assert manager.rules() == []
        with pytest.raises(QueryError):
            manager.remove_rule("gone")

    def test_fold_is_deferred_set_level(self, manager):
        """Conditions see the post-set state, not intermediate states."""
        fired = []
        manager.on("sees-comment", Event("add", label="restaurant"),
                   fired.append,
                   condition="select C from NEW.comment C")
        # The restaurant AND its comment arrive in one set; the condition
        # must see the comment even though addArc(restaurant) canonically
        # precedes addArc(comment).
        manager.fold("1Jan97", [
            CreNode("rx", COMPLEX), CreNode("cx", "hello"),
            AddArc("guide", "restaurant", "rx"),
            AddArc("rx", "comment", "cx")])
        assert len(fired) == 1

    def test_replay_history_reproduces_running_example(self, manager):
        kinds = []
        for kind in ("create", "update", "add", "remove"):
            manager.on(kind, Event(kind),
                       lambda a, k=kind: kinds.append(k))
        manager.replay_history(make_guide_history())
        assert kinds.count("update") == 1
        assert kinds.count("create") == 3
        assert kinds.count("add") == 3
        assert kinds.count("remove") == 1

    def test_activations_log(self, manager):
        manager.on("log", Event("update"), lambda a: None)
        manager.fold("1Jan97", [UpdNode("n1", 20)])
        assert len(manager.activations) == 1

    def test_empty_manager_from_scratch(self):
        manager = TriggerManager(root="top")
        fired = []
        manager.on("creation", Event("create"), fired.append)
        manager.fold("1Jan97", [CreNode("a", 1), AddArc("top", "x", "a")])
        assert len(fired) == 1
        assert manager.doem.graph.value("a") == 1
