"""Smoke tests: every example script must run clean and say what it promises.

The examples are user-facing deliverables; a refactor that breaks one
should fail the suite, not a reader's first session with the library.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def example_env() -> dict[str, str]:
    """The test process's env with ``src`` prepended to PYTHONPATH.

    The example scripts import :mod:`repro`; subprocesses do not inherit
    the pytest process's ``sys.path`` manipulation, so the package
    location must travel explicitly.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(SRC) if not existing \
        else os.pathsep.join([str(SRC), existing])
    return env

_EXPECTATIONS = {
    "quickstart.py": ["backends agree: OK", "Ex 4.4", "&price-history"],
    "restaurant_changes.py": ["New restaurants", "Price changes"],
    "library_notifications.py": ["POPULAR", "Ground truth"],
    "query_subscription.py": ["match", "Hakata"],
    "htmldiff_demo.py": ["htmldiff summary", "creNode"],
    "triggers_demo.py": ["rule activation", "per-rule firing counts"],
    "time_travel.py": ["H(D) == H: True",
                       "replay(O0, H(D)) == current snapshot: True"],
}


@pytest.mark.parametrize("script", sorted(_EXPECTATIONS))
def test_example_runs(script, tmp_path):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180,
        cwd=tmp_path,  # htmldiff_demo writes next to itself; cwd is inert
        env=example_env())
    assert process.returncode == 0, process.stderr[-2000:]
    for expected in _EXPECTATIONS[script]:
        assert expected in process.stdout, (script, expected)


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(_EXPECTATIONS), \
        "add new examples to _EXPECTATIONS so they stay smoke-tested"
