"""Shared fixtures: the paper's running example.

``guide_db`` is the Figure 2 OEM database (heterogeneous prices, flat and
structured addresses, a shared parking object, and the
parking/nearby-eats cycle).  ``guide_history`` is the Example 2.3 history
(three change sets at 1Jan97, 5Jan97, 8Jan97), and ``guide_doem`` is the
resulting Figure 4 DOEM database.
"""

from __future__ import annotations

import pytest

from repro import (
    COMPLEX,
    AddArc,
    CreNode,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    build_doem,
)


def make_guide_db() -> OEMDatabase:
    """The Figure 2 database (plain function form for non-fixture use)."""
    db = OEMDatabase(root="guide")
    db.create_node("r1", COMPLEX)          # Bangkok Cuisine
    db.create_node("r2", COMPLEX)          # Janta (the paper's n6)
    db.create_node("n1", 10)               # Bangkok's price (the paper's n1)
    db.create_node("nm1", "Bangkok Cuisine")
    db.create_node("nm2", "Janta")
    db.create_node("cu", "Indian")
    db.create_node("n7", COMPLEX)          # the shared parking object (n7)
    db.create_node("pv", "Lytton lot 2")
    db.create_node("cm", "usually full")
    db.create_node("pr2", "moderate")      # Janta's string price
    db.create_node("ad1", "120 Lytton")    # Bangkok's flat address
    db.create_node("ad2", COMPLEX)         # Janta's structured address
    db.create_node("st", "Lytton")
    db.create_node("ci", "Palo Alto")
    for arc in [
        ("guide", "restaurant", "r1"),
        ("guide", "restaurant", "r2"),
        ("r1", "name", "nm1"),
        ("r1", "price", "n1"),
        ("r1", "address", "ad1"),
        ("r1", "parking", "n7"),
        ("r2", "name", "nm2"),
        ("r2", "cuisine", "cu"),
        ("r2", "price", "pr2"),
        ("r2", "parking", "n7"),
        ("r2", "address", "ad2"),
        ("ad2", "street", "st"),
        ("ad2", "city", "ci"),
        ("n7", "address", "pv"),
        ("n7", "comment", "cm"),
        ("n7", "nearby-eats", "r1"),       # the Figure 2 cycle
    ]:
        db.add_arc(*arc)
    db.check()
    return db


def make_guide_history() -> OEMHistory:
    """The Example 2.3 history H = ((t1,U1),(t2,U2),(t3,U3))."""
    history = OEMHistory()
    history.append("1Jan97", [
        UpdNode("n1", 20),
        CreNode("n2", COMPLEX),
        CreNode("n3", "Hakata"),
        AddArc("guide", "restaurant", "n2"),
        AddArc("n2", "name", "n3"),
    ])
    history.append("5Jan97", [
        CreNode("n5", "need info"),
        AddArc("n2", "comment", "n5"),
    ])
    history.append("8Jan97", [
        RemArc("r2", "parking", "n7"),
    ])
    return history


@pytest.fixture
def guide_db() -> OEMDatabase:
    """The Figure 2 OEM database."""
    return make_guide_db()


@pytest.fixture
def guide_history() -> OEMHistory:
    """The Example 2.3 history."""
    return make_guide_history()


@pytest.fixture
def guide_doem(guide_db, guide_history):
    """The Figure 4 DOEM database D(O, H)."""
    return build_doem(guide_db, guide_history)


@pytest.fixture
def figure3_db(guide_db, guide_history) -> OEMDatabase:
    """The Figure 3 database: the Guide after the whole history."""
    return guide_history.apply_to(guide_db.copy())
