"""Segment framing: length-prefixed, checksummed, torn-tail classified."""

from __future__ import annotations

import struct

import pytest

from repro.errors import StoreError
from repro.store.segment import (
    FRAME_HEADER,
    HEADER_SIZE,
    MAGIC,
    MAX_RECORD_BYTES,
    SegmentScan,
    SegmentWriter,
    frame_record,
)

PAYLOADS = [b"{}", b'{"kind":"origin"}', b"x" * 1000, b"\xf0\x9f\x8e\x89"]


def write_segment(path, payloads):
    writer = SegmentWriter(path)
    for payload in payloads:
        writer.append(payload)
    writer.close()


def scan(path):
    scanner = SegmentScan(path)
    records = list(scanner)
    return scanner, records


class TestRoundTrip:
    def test_payloads_survive(self, tmp_path):
        path = tmp_path / "seg.log"
        write_segment(path, PAYLOADS)
        scanner, records = scan(path)
        assert records == PAYLOADS
        assert not scanner.torn
        assert scanner.good_bytes == path.stat().st_size

    def test_empty_segment_is_just_magic(self, tmp_path):
        path = tmp_path / "seg.log"
        write_segment(path, [])
        assert path.read_bytes() == MAGIC
        scanner, records = scan(path)
        assert records == []
        assert not scanner.torn

    def test_frame_layout(self):
        frame = frame_record(b"abc")
        length, crc = FRAME_HEADER.unpack(frame[:FRAME_HEADER.size])
        assert length == 3
        assert frame[FRAME_HEADER.size:] == b"abc"

    def test_writer_tracks_size(self, tmp_path):
        path = tmp_path / "seg.log"
        writer = SegmentWriter(path)
        assert writer.size == HEADER_SIZE
        writer.append(b"abc")
        writer.close()
        assert path.stat().st_size == HEADER_SIZE + FRAME_HEADER.size + 3

    def test_oversized_record_refused(self, tmp_path):
        writer = SegmentWriter(tmp_path / "seg.log")
        with pytest.raises(StoreError):
            writer.append(b"x" * (MAX_RECORD_BYTES + 1))
        writer.close()


class TestTornTails:
    """Every way a crash can shear the tail, classified and recoverable."""

    def _base(self, tmp_path):
        path = tmp_path / "seg.log"
        write_segment(path, PAYLOADS)
        scanner, _ = scan(path)
        return path, scanner.good_bytes

    def test_truncated_mid_payload(self, tmp_path):
        path, _ = self._base(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        scanner, records = scan(path)
        assert scanner.torn
        assert records == PAYLOADS[:-1]

    def test_truncated_mid_header(self, tmp_path):
        path, _ = self._base(tmp_path)
        full = path.read_bytes()
        # Leave 3 bytes of the last frame header behind.
        last_frame = FRAME_HEADER.size + len(PAYLOADS[-1])
        path.write_bytes(full[:len(full) - last_frame + 3])
        scanner, records = scan(path)
        assert scanner.torn
        assert records == PAYLOADS[:-1]
        assert scanner.good_bytes == len(full) - last_frame

    def test_flipped_checksum_byte(self, tmp_path):
        path, _ = self._base(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # corrupt the final payload
        path.write_bytes(bytes(data))
        scanner, records = scan(path)
        assert scanner.torn
        assert records == PAYLOADS[:-1]

    def test_implausible_length_prefix(self, tmp_path):
        path, _ = self._base(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack(">II", MAX_RECORD_BYTES + 1, 0))
            handle.write(b"garbage")
        scanner, records = scan(path)
        assert scanner.torn
        assert records == PAYLOADS

    def test_bad_magic_yields_nothing_durable(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(b"NOTMAGIC" + b"rest")
        scanner, records = scan(path)
        assert scanner.torn == "bad segment magic"
        assert records == []
        assert scanner.good_bytes == 0

    def test_resume_after_truncation(self, tmp_path):
        """rw recovery: truncate to good_bytes, then keep appending."""
        path, _ = self._base(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        scanner, _ = scan(path)
        writer = SegmentWriter(path, resume_at=scanner.good_bytes)
        writer.append(b"after-crash")
        writer.close()
        rescanner, records = scan(path)
        assert not rescanner.torn
        assert records == PAYLOADS[:-1] + [b"after-crash"]
