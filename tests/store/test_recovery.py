"""Crash recovery: torn writes, flipped bits, interrupted compaction.

Satellite #1's substance: every fault is injected against a real
on-disk log, then the store must either recover to the last durable
record (tail damage) or refuse loudly (interior damage) -- never serve
a wrong ``Ot(D)``.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreCorruptionError
from repro.sources.generators import demo_world
from repro.store import (
    ChangeLogStore,
    CheckpointPolicy,
    HistoryLog,
    fsck_log,
)

TINY_SEGMENTS = 512  # bytes, to force multi-segment logs


def build_log(tmp_path, *, days=20, policy=None, segment_bytes=TINY_SEGMENTS):
    db, history = demo_world(days=days)
    log = HistoryLog(tmp_path / "h", origin=db, segment_bytes=segment_bytes,
                     policy=policy or CheckpointPolicy.disabled())
    log.extend(history)
    log.close()
    return db, history, tmp_path / "h"


def last_segment(directory):
    return sorted(directory.glob("seg-*.log"))[-1]


def truncate_tail(path, drop: int):
    data = path.read_bytes()
    path.write_bytes(data[:-drop])


class TestTornTailRecovery:
    def test_truncated_mid_record_recovers_prefix(self, tmp_path):
        db, history, directory = build_log(tmp_path)
        truncate_tail(last_segment(directory), 5)

        report = fsck_log(directory)
        assert not report["ok"]
        assert any("torn" in problem for problem in report["problems"])

        log = HistoryLog(directory)  # rw open truncates the torn tail
        assert log.stats.recovered_tails >= 1
        recovered = log.timestamps()
        assert recovered == history.timestamps()[:len(recovered)]
        assert len(recovered) >= len(history) - 1
        # Every surviving Ot(D) is still exact.
        for when in recovered:
            assert log.snapshot_at(when).same_as(
                history.snapshot_at(db, when)), when
        log.close()
        assert fsck_log(directory)["ok"]

    def test_flipped_checksum_byte_recovers_prefix(self, tmp_path):
        db, history, directory = build_log(tmp_path)
        segment = last_segment(directory)
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0x55
        segment.write_bytes(bytes(data))

        log = HistoryLog(directory)
        assert log.stats.recovered_tails >= 1
        assert len(log) == len(history) - 1
        log.close()
        assert fsck_log(directory)["ok"]

    def test_recovered_log_accepts_new_appends(self, tmp_path):
        """The crash-recovery contract: truncate, then write on top."""
        db, history, directory = build_log(tmp_path)
        truncate_tail(last_segment(directory), 7)
        log = HistoryLog(directory)
        survivors = len(log)
        tail = history.entries()[survivors:]
        for when, change_set in tail:
            log.append(when, change_set)
        assert log.timestamps() == history.timestamps()
        assert log.tip().same_as(history.apply_to(db.copy()))
        log.close()

    def test_ro_open_skips_tail_without_repairing(self, tmp_path):
        _, history, directory = build_log(tmp_path)
        segment = last_segment(directory)
        truncate_tail(segment, 5)
        size_before = segment.stat().st_size

        log = HistoryLog(directory, "ro")
        assert len(log) < len(history)
        log.close()
        # Read-only recovery is in-memory only; the disk is untouched.
        assert segment.stat().st_size == size_before
        assert not fsck_log(directory)["ok"]

    def test_fsck_repair_truncates_tail(self, tmp_path):
        _, _, directory = build_log(tmp_path)
        truncate_tail(last_segment(directory), 5)
        report = fsck_log(directory, repair=True)
        assert report["repaired"]
        assert fsck_log(directory)["ok"]


class TestInteriorCorruption:
    def test_interior_segment_damage_refuses_to_open(self, tmp_path):
        _, _, directory = build_log(tmp_path)
        segments = sorted(directory.glob("seg-*.log"))
        assert len(segments) > 1, "fixture must produce a multi-segment log"
        truncate_tail(segments[0], 5)
        with pytest.raises(StoreCorruptionError):
            HistoryLog(directory)
        # fsck reports it but refuses to auto-repair interior damage.
        report = fsck_log(directory, repair=True)
        assert not report["ok"]
        assert not report["repaired"]

    def test_garbage_payload_refuses_to_open(self, tmp_path):
        _, _, directory = build_log(tmp_path, days=4,
                                    segment_bytes=1 << 20)
        segment = last_segment(directory)
        data = bytearray(segment.read_bytes())
        # Flip a byte in the middle of the file: the frame checksum
        # catches it and classifies everything after as torn -- but an
        # earlier record's *payload* corruption with a matching recompute
        # is impossible, so tail-classification is the expected outcome.
        data[len(data) // 2] ^= 0x01
        segment.write_bytes(bytes(data))
        log = HistoryLog(directory)
        assert len(log) < 4
        log.close()


class TestCheckpointFaults:
    def test_corrupt_checkpoint_is_skipped_not_trusted(self, tmp_path):
        db, history, directory = build_log(
            tmp_path, policy=CheckpointPolicy(replay_budget=4,
                                              size_weight=0.0, min_sets=1))
        log = HistoryLog(directory, "ro")
        refs = log.checkpoints()
        assert refs
        log.close()

        data = bytearray(refs[-1].path.read_bytes())
        data[-2] ^= 0xFF
        refs[-1].path.write_bytes(bytes(data))

        log = HistoryLog(directory, "ro")
        when = history.timestamps()[-1]
        # The damaged checkpoint is excluded at open; the answer is
        # still exact (served from an older checkpoint or the origin).
        assert log.snapshot_at(when).same_as(history.snapshot_at(db, when))
        assert log.checkpoint_problems
        assert len(log.checkpoints()) == len(refs) - 1
        log.close()

    def test_fsck_repair_deletes_bad_checkpoints(self, tmp_path):
        _, _, directory = build_log(
            tmp_path, policy=CheckpointPolicy(replay_budget=4,
                                              size_weight=0.0, min_sets=1))
        bad = sorted(directory.glob("ckpt-*.oem"))[-1]
        bad.write_text("not a checkpoint at all")
        report = fsck_log(directory, repair=True)
        assert report["repaired"]
        assert not bad.exists()
        assert fsck_log(directory)["ok"]

    def test_truncated_checkpoint_header(self, tmp_path):
        db, history, directory = build_log(
            tmp_path, policy=CheckpointPolicy(replay_budget=4,
                                              size_weight=0.0, min_sets=1))
        bad = sorted(directory.glob("ckpt-*.oem"))[-1]
        bad.write_bytes(bad.read_bytes()[:10])
        log = HistoryLog(directory, "ro")
        when = history.timestamps()[-1]
        assert log.snapshot_at(when).same_as(history.snapshot_at(db, when))
        log.close()


class TestInterruptedCompaction:
    def test_stray_generation_is_detected_and_repaired(self, tmp_path):
        """A crash between writing gen+1 segments and swapping CURRENT
        leaves stray files the next fsck must clean up."""
        _, history, directory = build_log(tmp_path)
        # Simulate the torn compaction: a gen-2 segment exists but
        # CURRENT still points at gen 1.
        stray = directory / "seg-0002-000001.log"
        stray.write_bytes(b"DOEMSEG1" + b"half-written")

        report = fsck_log(directory)
        assert any("stray" in problem for problem in report["problems"])

        report = fsck_log(directory, repair=True)
        assert report["repaired"]
        assert not stray.exists()

        log = HistoryLog(directory)
        assert log.timestamps() == history.timestamps()
        log.close()


class TestStoreWideFsck:
    def test_store_fsck_covers_every_history(self, tmp_path):
        db, history = demo_world(days=10)
        with ChangeLogStore(tmp_path / "s") as store:
            store.put_history("alpha", db, history)
            store.put_history("beta", db, history)
        directory = tmp_path / "s" / "alpha"
        truncate_tail(last_segment(directory), 5)

        with ChangeLogStore(tmp_path / "s", "ro") as store:
            report = store.fsck()
        assert not report["ok"]
        by_name = {entry["name"]: entry for entry in report["histories"]}
        assert not by_name["alpha"]["ok"]
        assert by_name["beta"]["ok"]

        with ChangeLogStore(tmp_path / "s") as store:
            report = store.fsck(repair=True)
        assert report["ok"]

    def test_kill_reopen_roundtrip(self, tmp_path):
        """persist -> hard-exit (no close/fsync of pending state) ->
        reopen -> fsck: the demo history survives byte-for-byte."""
        db, history = demo_world(days=12)
        store = ChangeLogStore(tmp_path / "s")
        store.put_history("demo", db, history)
        store.checkpoint("demo")
        # Simulate the kill: drop the handle without close() and clear
        # the lock the way a dead pid would leave it.
        lock = tmp_path / "s" / "LOCK"
        del store
        if lock.exists():
            lock.write_text("999999999")

        with ChangeLogStore(tmp_path / "s") as reopened:
            assert reopened.fsck()["ok"]
            doem = reopened.get_doem("demo")
            assert doem.timestamps() == history.timestamps()
            for when in history.timestamps():
                assert reopened.snapshot_at("demo", when).same_as(
                    history.snapshot_at(db, when)), when
