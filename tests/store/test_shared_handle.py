"""The shared-handle contract: one process, one store handle per path.

The bugfix behind ``--store``/``--db`` and the QSS server sharing a
single writer: :func:`repro.store.open_store` caches handles by real
path, upgrades ro -> rw, and :func:`close_store` releases the lock for
the next owner.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import StoreLockedError
from repro.sources.generators import demo_world
from repro.store import ChangeLogStore, close_store, open_store


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "s"
    yield path
    close_store(path)


class TestHandleCache:
    def test_same_path_same_handle(self, store_path):
        first = open_store(store_path)
        second = open_store(store_path)
        assert first is second

    def test_relative_and_absolute_paths_share(self, store_path, monkeypatch):
        first = open_store(store_path)
        monkeypatch.chdir(store_path.parent)
        second = open_store(store_path.name)
        assert first is second

    def test_ro_then_rw_upgrades(self, store_path):
        ChangeLogStore(store_path).close()  # create the store
        reader = open_store(store_path, "ro")
        assert reader.mode == "ro"
        writer = open_store(store_path, "rw")
        assert writer.mode == "rw"
        assert reader.closed  # the old handle was retired, not leaked
        assert open_store(store_path, "ro") is writer

    def test_closed_handles_are_replaced(self, store_path):
        first = open_store(store_path)
        close_store(store_path)
        assert first.closed
        second = open_store(store_path)
        assert second is not first
        assert not second.closed

    def test_close_store_releases_the_writer_lock(self, store_path):
        open_store(store_path)
        close_store(store_path)
        direct = ChangeLogStore(store_path)  # would raise if still locked
        direct.close()

    def test_close_store_unknown_path_is_noop(self, tmp_path):
        close_store(tmp_path / "never-opened")


class TestSharedWrites:
    def test_two_openers_see_one_anothers_writes(self, store_path):
        """The CLI and the QSS server observing the same served history."""
        db, history = demo_world(days=6)
        server_side = open_store(store_path)
        server_side.put_history("demo", db, history)

        cli_side = open_store(store_path)  # same handle, same logs
        assert cli_side is server_side
        assert cli_side.names() == ["demo"]
        assert cli_side.get_doem("demo").timestamps() == history.timestamps()

    def test_lock_file_names_this_process(self, store_path):
        store = open_store(store_path)
        lock = store_path / "LOCK"
        assert int(lock.read_text().strip()) == os.getpid()
        close_store(store_path)
        assert not lock.exists()

    def test_second_process_writer_is_refused(self, store_path):
        """Direct (uncached) construction models a second process."""
        open_store(store_path)
        with pytest.raises(StoreLockedError):
            ChangeLogStore(store_path)
