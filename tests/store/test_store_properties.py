"""Property tests: the durable log is semantically invisible.

Satellite #4: quantifying over randomized worlds (seeded generators, so
hypothesis gets shrinkable handles on "which world" failed),

* write -> checkpoint -> compact -> reopen preserves every ``Ot(D)``;
* store-backed DOEM == in-memory DOEM on all four query engines;
* compaction never drops a timestamp reachable from a checkpoint chain.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    TranslatingChorelEngine,
    build_doem,
    parse_timestamp,
    random_database,
    random_history,
)
from repro.store import CheckpointPolicy, HistoryLog

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=25)
steps = st.integers(min_value=1, max_value=6)
budgets = st.integers(min_value=0, max_value=16)

relaxed = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def make_world(seed: int, nodes: int, n_steps: int):
    db = random_database(seed=seed, nodes=nodes)
    history = random_history(db, seed=seed, steps=n_steps, set_size=5)
    return db, history


def probe_times(history):
    times = history.timestamps()
    probes = list(times)
    probes.append(times[0].plus(days=-1))
    probes.append(times[-1].plus(days=1))
    for left, right in zip(times, times[1:]):
        probes.append(parse_timestamp((left.ticks + right.ticks) // 2))
    return probes


def policy_for(budget: int) -> CheckpointPolicy:
    if budget == 0:
        return CheckpointPolicy.disabled()
    return CheckpointPolicy(replay_budget=budget, size_weight=0.0,
                            min_sets=1)


class TestDurableOt:
    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps, budget=budgets)
    def test_lifecycle_preserves_every_ot(self, tmp_path_factory, seed,
                                          nodes, n_steps, budget):
        """write -> checkpoint -> compact -> reopen: Ot(D) never moves."""
        db, history = make_world(seed, nodes, n_steps)
        directory = tmp_path_factory.mktemp("log") / "h"
        probes = probe_times(history)
        expected = {when: history.snapshot_at(db, when) for when in probes}

        log = HistoryLog(directory, origin=db, policy=policy_for(budget))
        log.extend(history)
        for when, snapshot in expected.items():
            assert log.snapshot_at(when).same_as(snapshot), when
        log.write_checkpoint()
        log.compact()
        for when, snapshot in expected.items():
            assert log.snapshot_at(when).same_as(snapshot), when
        log.close()

        reopened = HistoryLog(directory, "ro")
        for when, snapshot in expected.items():
            assert reopened.snapshot_at(when).same_as(snapshot), when
            assert reopened.snapshot_at(
                when, use_checkpoints=False).same_as(snapshot), when
        reopened.close()

    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_compaction_keeps_checkpoint_reachable_times(
            self, tmp_path_factory, seed, nodes, n_steps):
        """No timestamp reachable from a checkpoint chain is dropped."""
        db, history = make_world(seed, nodes, n_steps)
        directory = tmp_path_factory.mktemp("log") / "h"
        log = HistoryLog(directory, origin=db, policy=policy_for(3))
        log.extend(history)
        before = set(log.timestamps())
        reachable = {ref.at for ref in log.checkpoints()}
        log.compact()  # horizonless: everything stays reachable
        assert set(log.timestamps()) == before
        assert reachable <= {ref.at for ref in log.checkpoints()} | before

        if len(history) >= 2:
            horizon = history.timestamps()[len(history) // 2]
            log.compact(before=horizon)
            # Times after the horizon survive; checkpoints at or after
            # the new base are still indexed and still load.
            assert set(log.timestamps()) == \
                {when for when in before if when > horizon}
            for ref in log.checkpoints():
                assert ref.at >= horizon
                assert log.snapshot_at(ref.at).same_as(
                    history.snapshot_at(db, ref.at))
        log.close()


class TestEngineEquivalence:
    @relaxed
    @given(seed=seeds, nodes=st.integers(min_value=5, max_value=20),
           n_steps=st.integers(min_value=2, max_value=5))
    def test_store_backed_doem_matches_in_memory_on_all_engines(
            self, tmp_path_factory, seed, nodes, n_steps):
        db, history = make_world(seed, nodes, n_steps)
        directory = tmp_path_factory.mktemp("log") / "h"
        with HistoryLog(directory, origin=db) as log:
            log.extend(history)
            durable = log.get_doem()
        memory = build_doem(db, history)
        assert durable.same_as(memory)

        times = history.timestamps()
        mid = times[len(times) // 2]
        queries = [
            "select root.item",
            "select root.<add at T>item where T > " + str(times[0]),
            f"select root.<rem at T>item where T <= {times[-1]}",
            f"select root.item.name<cre at T> where T > {mid}",
        ]
        lorel = ("select root.item",)
        for query in queries:
            naive = sorted(map(str, ChorelEngine(memory, name="root")
                               .run(query)))
            for engine_cls in (ChorelEngine, TranslatingChorelEngine,
                               IndexedChorelEngine):
                stored = sorted(map(str, engine_cls(durable, name="root")
                                    .run(query)))
                assert stored == naive, (engine_cls.__name__, query)
        for query in lorel:
            naive = sorted(map(str, LorelEngine(memory.graph, name="root")
                               .run(query)))
            stored = sorted(map(str, LorelEngine(durable.graph, name="root")
                                .run(query)))
            assert stored == naive, query
