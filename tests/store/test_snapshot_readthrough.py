"""SnapshotCache as a read-through view over durable checkpoints."""

from __future__ import annotations

from repro import SnapshotCache, parse_timestamp, snapshot_at
from repro.sources.generators import demo_world
from repro.store import CheckpointPolicy, HistoryLog


def build(tmp_path, days=20, budget=4):
    db, history = demo_world(days=days)
    log = HistoryLog(tmp_path / "h", origin=db,
                     policy=CheckpointPolicy(replay_budget=budget,
                                             size_weight=0.0, min_sets=1))
    log.extend(history)
    return db, history, log


class TestReadThrough:
    def test_miss_is_served_from_durable_checkpoint(self, tmp_path):
        db, history, log = build(tmp_path)
        assert log.checkpoints()
        doem = log.get_doem()
        cache = SnapshotCache(doem)
        cache.attach_store(log)

        when = history.timestamps()[-1]
        result = cache.snapshot_at(when)
        assert result.same_as(history.snapshot_at(db, when))
        assert cache.stats.store_hits == 1
        # The durable hit counts toward the cache's hit rate.
        assert cache.stats.hit_rate == 1.0
        # A repeat is now an exact in-memory hit.
        cache.snapshot_at(when)
        assert cache.stats.exact_hits == 1
        log.close()

    def test_detached_cache_still_correct(self, tmp_path):
        db, history, log = build(tmp_path)
        doem = log.get_doem()
        cache = SnapshotCache(doem)  # no attach_store
        when = history.timestamps()[len(history) // 2]
        assert cache.snapshot_at(when).same_as(
            history.snapshot_at(db, when))
        assert cache.stats.store_hits == 0
        log.close()

    def test_every_probe_time_agrees_with_direct_walk(self, tmp_path):
        db, history, log = build(tmp_path, days=14, budget=3)
        doem = log.get_doem()
        cache = SnapshotCache(doem, capacity=2)  # force evictions
        cache.attach_store(log)
        times = history.timestamps()
        probes = list(times)
        probes.append(times[0].plus(days=-1))
        probes.append(times[-1].plus(days=1))
        for left, right in zip(times, times[1:]):
            probes.append(parse_timestamp((left.ticks + right.ticks) // 2))
        for when in probes:
            assert cache.snapshot_at(when).same_as(
                snapshot_at(doem, when)), when
        log.close()

    def test_in_memory_base_preferred_when_newer(self, tmp_path):
        """A warmer LRU entry beats an older durable checkpoint."""
        db, history, log = build(tmp_path, days=20, budget=6)
        doem = log.get_doem()
        cache = SnapshotCache(doem)
        cache.attach_store(log)
        times = history.timestamps()
        # Warm the cache at the final time, then ask just past it: the
        # exact/incremental path should win, not the store.
        cache.snapshot_at(times[-1])
        hits_before = cache.stats.store_hits
        result = cache.snapshot_at(times[-1].plus(days=1))
        assert result.same_as(history.snapshot_at(db, times[-1]))
        assert cache.stats.store_hits == hits_before
        log.close()
