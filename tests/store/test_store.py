"""ChangeLogStore and HistoryLog: the durable change-log behind Ot(D)."""

from __future__ import annotations

import json

import pytest

from repro import (
    OEMDatabase,
    build_doem,
    parse_timestamp,
    random_database,
    random_history,
    snapshot_at,
)
from repro.errors import (
    InvalidChangeError,
    InvalidHistoryError,
    StoreError,
    StoreLockedError,
)
from repro.oem.history import AddArc, ChangeSet, CreNode, UpdNode
from repro.sources.generators import demo_world
from repro.store import (
    ChangeLogStore,
    CheckpointPolicy,
    HistoryLog,
    is_store,
    sanitize_name,
)


def make_world(seed: int = 7, *, nodes: int = 20, steps: int = 5):
    db = random_database(seed=seed, nodes=nodes)
    history = random_history(db, seed=seed, steps=steps, set_size=6)
    return db, history


def sample_times(history):
    times = history.timestamps()
    probes = list(times)
    probes.append(times[0].plus(days=-1))
    probes.append(times[-1].plus(days=1))
    for left, right in zip(times, times[1:]):
        probes.append(parse_timestamp((left.ticks + right.ticks) // 2))
    return probes


class TestHistoryLog:
    def test_round_trips_a_history(self, tmp_path):
        db, history = make_world()
        log = HistoryLog(tmp_path / "h", origin=db)
        log.extend(history)
        assert len(log) == len(history)
        assert log.timestamps() == history.timestamps()
        for stored, original in zip(log.entries(), history.entries()):
            assert stored[0] == original[0]
        assert log.origin().same_as(db)
        log.close()

        reopened = HistoryLog(tmp_path / "h", "ro")
        assert reopened.timestamps() == history.timestamps()
        assert reopened.tip().same_as(history.apply_to(db.copy()))
        reopened.close()

    def test_snapshot_at_matches_in_memory(self, tmp_path):
        db, history = make_world()
        log = HistoryLog(tmp_path / "h", origin=db,
                         policy=CheckpointPolicy(replay_budget=4,
                                                 size_weight=0.0,
                                                 min_sets=1))
        log.extend(history)
        assert log.checkpoints(), "tiny budget must force checkpoints"
        for when in sample_times(history):
            expected = history.snapshot_at(db, when)
            assert log.snapshot_at(when).same_as(expected), when
            # And the replay-from-origin path agrees with itself.
            assert log.snapshot_at(
                when, use_checkpoints=False).same_as(expected), when
        log.close()

    def test_append_validates_order_and_conflicts(self, tmp_path):
        log = HistoryLog(tmp_path / "h", origin=OEMDatabase(root="r"))
        when = parse_timestamp("5Jan97")
        log.append(when, ChangeSet([CreNode("a", 1), AddArc("r", "x", "a")]))
        with pytest.raises(InvalidHistoryError):
            log.append(when, ChangeSet([UpdNode("a", 2)]))
        with pytest.raises(InvalidChangeError):
            # Invalid against the tip: node does not exist.
            log.append(when.plus(days=1), ChangeSet([UpdNode("ghost", 2)]))
        # The failed appends left nothing behind.
        assert len(log) == 1
        log.close()

    def test_segment_rolls(self, tmp_path):
        db, history = demo_world(days=40)
        log = HistoryLog(tmp_path / "h", origin=db, segment_bytes=512,
                         policy=CheckpointPolicy.disabled())
        log.extend(history)
        assert len(log.segments()) > 1
        stats = log.stats.as_dict()
        assert stats["segment_rolls"] >= 1
        log.close()
        reopened = HistoryLog(tmp_path / "h", "ro", segment_bytes=512)
        assert reopened.timestamps() == history.timestamps()
        reopened.close()

    def test_checkpoint_is_idempotent(self, tmp_path):
        db, history = demo_world(days=10)
        log = HistoryLog(tmp_path / "h", origin=db,
                         policy=CheckpointPolicy.disabled())
        log.extend(history)
        first = log.write_checkpoint()
        second = log.write_checkpoint()
        assert first is not None
        assert second == first
        assert len(log.checkpoints()) == 1
        log.close()

    def test_ro_mode_refuses_writes(self, tmp_path):
        db, history = demo_world(days=3)
        with HistoryLog(tmp_path / "h", origin=db) as log:
            log.extend(history)
        ro = HistoryLog(tmp_path / "h", "ro")
        with pytest.raises(StoreError):
            ro.append(parse_timestamp("1Mar97"), ChangeSet([CreNode("z", 1)]))
        ro.close()


class TestCompaction:
    def test_horizonless_compaction_preserves_every_ot(self, tmp_path):
        db, history = make_world(seed=11)
        log = HistoryLog(tmp_path / "h", origin=db,
                         policy=CheckpointPolicy(replay_budget=4,
                                                 size_weight=0.0,
                                                 min_sets=1))
        log.extend(history)
        probes = sample_times(history)
        before = [log.snapshot_at(when) for when in probes]
        summary = log.compact()
        assert summary["generation"] >= 2
        for when, expected in zip(probes, before):
            assert log.snapshot_at(when).same_as(expected), when
        log.close()
        reopened = HistoryLog(tmp_path / "h", "ro")
        for when, expected in zip(probes, before):
            assert reopened.snapshot_at(when).same_as(expected), when
        reopened.close()

    def test_horizon_compaction_promotes_origin(self, tmp_path):
        db, history = make_world(seed=3)
        times = history.timestamps()
        horizon = times[len(times) // 2]
        log = HistoryLog(tmp_path / "h", origin=db)
        log.extend(history)
        # The entry at the horizon itself is folded into the new origin.
        kept = [when for when in times if when >= horizon]
        folded = [when for when in times if when <= horizon]
        expected = {when: log.snapshot_at(when) for when in kept}
        summary = log.compact(before=horizon)
        assert summary["dropped_sets"] == len(folded)
        assert log.timestamps() == [when for when in kept if when > horizon]
        assert log.origin().same_as(expected[horizon])
        for when in kept:
            assert log.snapshot_at(when).same_as(expected[when]), when
        log.close()


class TestChangeLogStore:
    def test_marker_and_layout(self, tmp_path):
        root = tmp_path / "store"
        store = ChangeLogStore(root)
        assert is_store(root)
        marker = json.loads((root / ".doemstore").read_text())
        assert marker["format"] == 1
        assert store.names() == []
        store.close()

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "unrelated.txt").write_text("hello")
        with pytest.raises(StoreError):
            ChangeLogStore(tmp_path)

    def test_ro_open_requires_store(self, tmp_path):
        with pytest.raises(StoreError):
            ChangeLogStore(tmp_path / "missing", "ro")

    def test_put_history_and_read_back(self, tmp_path):
        db, history = make_world(seed=5)
        with ChangeLogStore(tmp_path / "s") as store:
            store.put_history("world", db, history)
            assert "world" in store
            assert store.names() == ["world"]
        with ChangeLogStore(tmp_path / "s", "ro") as store:
            doem = store.get_doem("world")
            assert doem.same_as(build_doem(db, history))
            for when in sample_times(history):
                assert store.snapshot_at("world", when).same_as(
                    history.snapshot_at(db, when)), when

    def test_single_writer_lock(self, tmp_path):
        store = ChangeLogStore(tmp_path / "s")
        with pytest.raises(StoreLockedError):
            ChangeLogStore(tmp_path / "s")
        # Readers never contend for the lock.
        reader = ChangeLogStore(tmp_path / "s", "ro")
        reader.close()
        store.close()
        # Releasing the lock frees the next writer.
        ChangeLogStore(tmp_path / "s").close()

    def test_stale_lock_is_stolen(self, tmp_path):
        store = ChangeLogStore(tmp_path / "s")
        store.close()
        # A dead pid in LOCK (e.g. a crashed CLI one-shot) must not wedge
        # the store forever.
        (tmp_path / "s" / "LOCK").write_text("999999999")
        fresh = ChangeLogStore(tmp_path / "s")
        fresh.close()

    def test_info_totals(self, tmp_path):
        db, history = demo_world(days=8)
        with ChangeLogStore(tmp_path / "s") as store:
            store.put_history("demo", db, history)
            store.checkpoint("demo")
            info = store.info()
        assert info["change_sets"] == len(history)
        assert info["checkpoints"] == 1
        assert info["histories"]["demo"]["change_sets"] == len(history)

    def test_bad_names_are_refused(self, tmp_path):
        with ChangeLogStore(tmp_path / "s") as store:
            with pytest.raises(StoreError):
                store.create("../escape", OEMDatabase(root="r"))


class TestSanitizeName:
    def test_clean_names_pass_through(self):
        for name in ("demo", "guide-2.1", "A_b-c.d"):
            assert sanitize_name(name) == name

    def test_dirty_names_are_slugged_deterministically(self):
        alias = "guide::select guide.restaurant"
        first = sanitize_name(alias)
        assert first == sanitize_name(alias)
        assert first != sanitize_name("guide::select guide.member")
        assert "/" not in first and ":" not in first
        # The slug is itself a valid store name.
        assert sanitize_name(first) == first
