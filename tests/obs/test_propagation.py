"""Merge semantics behind cross-process telemetry propagation.

Covers the instrument-level merges (``Histogram.merge``, ``Gauge.merge``),
the registry delta machinery (``typed_snapshot`` / ``delta_since`` /
``merge_delta``), the snapshot's direct-instrument + family-sum addition,
the self-describing histogram export (bucket ``bounds``), and the
worker-side capture / parent-side merge pair in
:mod:`repro.obs.propagation`.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry
from repro.obs.propagation import capture_task_telemetry, merge_task_telemetry
from repro.obs.trace import Span, Tracer


class TestHistogramMerge:
    def test_merge_adds_buckets_sum_count(self):
        a = Histogram("h", buckets=(0.1, 1.0))
        b = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            a.observe(value)
        b.observe(0.5)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 2, "le_inf": 1}

    def test_merge_accepts_snapshot_dict(self):
        a = Histogram("h", buckets=(0.1, 1.0))
        b = Histogram("h", buckets=(0.1, 1.0))
        b.observe(0.05)
        a.merge(b.snapshot())
        assert a.count == 1

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("h", buckets=(0.1, 1.0))
        b = Histogram("h", buckets=(0.5,))
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b)

    def test_snapshot_includes_bounds(self):
        snap = Histogram("h", buckets=(0.25, 2.0)).snapshot()
        assert snap["bounds"] == [0.25, 2.0]


class TestGaugeMerge:
    def test_merge_keeps_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.merge(3)
        assert gauge.value == 5
        gauge.merge(9)
        assert gauge.value == 9


class TestRegistryDelta:
    def test_delta_since_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("b").inc(1)
        reg.histogram("h").observe(0.01)
        reg.gauge("g").set(4)
        baseline = reg.typed_snapshot()
        reg.counter("a").inc(3)
        reg.histogram("h").observe(0.02)
        delta = reg.delta_since(baseline)
        assert delta["counters"] == {"a": 3}
        assert list(delta["histograms"]) == ["h"]
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["bounds"]  # self-describing
        assert delta["gauges"] == {}

    def test_delta_includes_group_counters(self):
        reg = MetricsRegistry()
        group = reg.group("fam", ("hits",))
        baseline = reg.typed_snapshot()
        group["hits"].inc(7)
        assert reg.delta_since(baseline)["counters"] == {"fam.hits": 7}

    def test_delta_is_picklable(self):
        reg = MetricsRegistry()
        baseline = reg.typed_snapshot()
        reg.counter("x").inc()
        reg.histogram("h").observe(1.0)
        reg.gauge("g").set(2)
        delta = reg.delta_since(baseline)
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_merge_delta_round_trip(self):
        worker = MetricsRegistry()
        baseline = worker.typed_snapshot()
        worker.counter("repro.view.annotation_visits").inc(11)
        worker.histogram("lat", buckets=(0.5,)).observe(0.1)
        worker.gauge("peak").set(6)
        delta = worker.delta_since(baseline)

        parent = MetricsRegistry()
        parent.counter("repro.view.annotation_visits").inc(4)
        parent.gauge("peak").set(9)
        parent.merge_delta(delta)
        snap = parent.snapshot()
        assert snap["repro.view.annotation_visits"] == 15
        assert snap["lat"]["count"] == 1
        assert snap["lat"]["bounds"] == [0.5]
        assert snap["peak"] == 9  # max(9, 6)

    def test_merge_delta_none_and_empty_are_noops(self):
        reg = MetricsRegistry()
        reg.merge_delta(None)
        reg.merge_delta({})
        assert reg.snapshot() == {}

    def test_snapshot_adds_direct_counter_to_family_sum(self):
        """Merged worker deltas (direct counters) combine with the
        parent's live group instances of the same family name."""
        reg = MetricsRegistry()
        group = reg.group("fam", ("hits",))
        group["hits"].inc(5)
        reg.counter("fam.hits").inc(2)  # e.g. merged from a worker
        assert reg.snapshot()["fam.hits"] == 7

    def test_export_json_carries_histogram_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(0.1,)).observe(0.05)
        payload = json.loads(reg.export_json())
        assert payload["h"]["bounds"] == [0.1]
        assert payload["h"]["count"] == 1


class TestTracerAttachment:
    def test_attach_to_nests_spans_under_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            with tracer.attach_to(parent):
                with tracer.span("child"):
                    pass
        assert [c.name for c in parent.children] == ["child"]
        assert tracer.current_span() is None

    def test_attach_to_disabled_or_none_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.attach_to(None):
            pass
        with tracer.attach_to(Span("x")):
            pass
        assert tracer.roots == []

    def test_adopt_under_parent_and_roots(self):
        tracer = Tracer(enabled=True)
        orphan = Span("shard")
        parent = Span("fanout")
        tracer.adopt([orphan], parent=parent)
        assert parent.children == [orphan]
        other = Span("other")
        tracer.adopt([other])
        assert other in tracer.roots

    def test_span_round_trips_through_dict(self):
        root = Span("a", {"k": 1})
        child = Span("b")
        child.end = 0.5
        root.children.append(child)
        root.end = 1.0
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "a"
        assert rebuilt.attrs == {"k": 1}
        assert rebuilt.duration == pytest.approx(1.0)
        assert rebuilt.children[0].name == "b"
        assert rebuilt.children[0].duration == pytest.approx(0.5)


class TestTaskTelemetry:
    def test_capture_fills_metrics_and_spans(self):
        from repro.obs.metrics import registry as global_registry
        from repro.obs.trace import get_tracer

        sink: dict = {}
        with capture_task_telemetry(sink, trace=True):
            global_registry().counter("test.propagation.ops").inc(3)
            with get_tracer().span("task.phase"):
                pass
        assert sink["metrics"]["counters"]["test.propagation.ops"] == 3
        assert [s["name"] for s in sink["spans"]] == ["task.phase"]
        # One-off capture leaves no residue when tracing was off before.
        assert get_tracer().enabled is False

    def test_capture_records_partial_work_on_error(self):
        from repro.obs.metrics import registry as global_registry

        sink: dict = {}
        with pytest.raises(RuntimeError):
            with capture_task_telemetry(sink, trace=True):
                global_registry().counter("test.propagation.partial").inc()
                raise RuntimeError("half way")
        assert sink["metrics"]["counters"]["test.propagation.partial"] == 1
        assert "spans" in sink

    def test_merge_task_telemetry_reparents_spans(self):
        from repro.obs.metrics import registry as global_registry
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        before = global_registry().snapshot().get(
            "test.propagation.merged", 0)
        parent = Span("parallel.fanout")
        payload = {
            "metrics": {"counters": {"test.propagation.merged": 2},
                        "gauges": {}, "histograms": {}},
            "spans": [{"name": "parallel.shard", "duration": 0.01}],
        }
        prior = tracer.enabled
        tracer.enabled = True
        try:
            merge_task_telemetry(payload, parent_span=parent)
        finally:
            tracer.enabled = prior
        after = global_registry().snapshot()["test.propagation.merged"]
        assert after - before == 2
        assert [c.name for c in parent.children] == ["parallel.shard"]

    def test_merge_task_telemetry_none_is_noop(self):
        merge_task_telemetry(None)
        merge_task_telemetry({})
