"""The tracing layer: spans, the no-op fast path, capture, round trips."""

import json
import time

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    _NOOP,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)


@pytest.fixture(autouse=True)
def clean_global_tracer():
    """Every test starts and ends with the global tracer off and empty."""
    tracer = get_tracer()
    tracer.enabled = False
    tracer.clear()
    yield tracer
    tracer.enabled = False
    tracer.clear()


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop(self):
        """The zero-allocation invariant: a disabled tracer hands out the
        one module-level no-op object, never a fresh span."""
        assert span("a") is _NOOP
        assert span("b", attr=1) is span("a")

    def test_disabled_records_nothing(self):
        with span("outer"):
            with span("inner"):
                pass
        tracer = get_tracer()
        assert tracer.roots == []
        assert tracer._stack == []

    def test_tracer_method_also_noops(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is _NOOP
        with tracer.span("x"):
            pass
        assert tracer.roots == []

    def test_noop_swallows_no_exceptions(self):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("propagates")


class TestRecording:
    def test_nesting_builds_a_tree(self):
        enable_tracing()
        with span("root", query="q"):
            with span("parse"):
                pass
            with span("eval"):
                with span("index"):
                    pass
        tracer = get_tracer()
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "root"
        assert root.attrs == {"query": "q"}
        assert [c.name for c in root.children] == ["parse", "eval"]
        assert [c.name for c in root.children[1].children] == ["index"]
        assert tracer._stack == []

    def test_sibling_roots(self):
        enable_tracing()
        with span("first"):
            pass
        with span("second"):
            pass
        assert [r.name for r in get_tracer().roots] == ["first", "second"]

    def test_durations_nest(self):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                time.sleep(0.002)
        root = get_tracer().roots[0]
        inner = root.children[0]
        assert inner.duration >= 0.002
        assert root.duration >= inner.duration
        assert root.self_time <= root.duration

    def test_exception_still_closes_the_span(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        tracer = get_tracer()
        assert tracer._stack == []
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.duration >= 0.0

    def test_walk_and_find(self):
        enable_tracing()
        with span("a"):
            with span("b"):
                with span("c"):
                    pass
            with span("d"):
                pass
        root = get_tracer().roots[0]
        assert [(d, s.name) for d, s in root.walk()] == \
            [(0, "a"), (1, "b"), (2, "c"), (1, "d")]
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_clear(self):
        enable_tracing()
        with span("x"):
            pass
        get_tracer().clear()
        assert get_tracer().roots == []


class TestCapture:
    def test_capture_restores_disabled_and_leaves_no_residue(self):
        tracer = get_tracer()
        assert not tracer.enabled
        with tracer.capture() as cap:
            with span("captured"):
                pass
        assert not tracer.enabled
        assert tracer.roots == []  # one-off profiling leaves nothing behind
        assert [s.name for s in cap.spans] == ["captured"]

    def test_capture_keeps_spans_when_already_enabled(self):
        tracer = enable_tracing()
        with span("before"):
            pass
        with tracer.capture() as cap:
            with span("during"):
                pass
        assert tracer.enabled
        assert [r.name for r in tracer.roots] == ["before", "during"]
        assert [s.name for s in cap.spans] == ["during"]

    def test_capture_find(self):
        tracer = get_tracer()
        with tracer.capture() as cap:
            with span("outer"):
                with span("inner"):
                    pass
        assert cap.find("inner").name == "inner"
        assert cap.find("absent") is None


class TestSerialization:
    def test_dict_round_trip(self):
        enable_tracing()
        with span("root", kind="test"):
            with span("child"):
                time.sleep(0.001)
        original = get_tracer().roots[0]
        rebuilt = Span.from_dict(original.to_dict())
        assert rebuilt.name == original.name
        assert rebuilt.attrs == original.attrs
        assert rebuilt.duration == pytest.approx(original.duration)
        assert [c.name for c in rebuilt.children] == ["child"]
        # idempotent: a second round trip is byte-identical
        assert Span.from_dict(rebuilt.to_dict()).to_dict() == \
            rebuilt.to_dict()

    def test_export_json_parses(self):
        enable_tracing()
        with span("a"):
            with span("b"):
                pass
        payload = json.loads(get_tracer().export_json())
        assert payload[0]["name"] == "a"
        assert payload[0]["children"][0]["name"] == "b"

    def test_enable_disable_return_the_global(self):
        assert enable_tracing() is get_tracer()
        assert get_tracer().enabled
        assert disable_tracing() is get_tracer()
        assert not get_tracer().enabled
