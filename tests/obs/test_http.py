"""The obs HTTP surface: exposition headers, /queries, routing.

``/metrics`` must be scrape-compatible (the ``text/plain;
version=0.0.4`` content type plus ``# HELP``/``# TYPE`` per family);
``/queries`` serves the process query log's fingerprint-keyed snapshot.
Both are exercised over a real socket -- the server binds an ephemeral
port, the test client is plain :mod:`urllib`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.http import PROMETHEUS_CONTENT_TYPE, MetricsHTTPServer
from repro.obs.metrics import registry
from repro.obs.querylog import QueryLog, QueryRecord


@pytest.fixture()
def server():
    with MetricsHTTPServer() as running:
        yield running


def fetch(server, path):
    return urllib.request.urlopen(server.url + path, timeout=5)


class TestMetricsEndpoint:
    def test_prometheus_content_type_and_headers(self, server):
        registry().counter("httptest.hits").inc(2)
        response = fetch(server, "/metrics")
        assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "version=0.0.4" in response.headers["Content-Type"]
        body = response.read().decode("utf-8")
        assert "# HELP httptest_hits " in body
        assert "# TYPE httptest_hits counter" in body
        assert "httptest_hits 2" in body

    def test_metrics_json_roundtrip(self, server):
        registry().counter("httptest.json").inc()
        payload = json.loads(fetch(server, "/metrics.json").read())
        assert payload["httptest.json"] >= 1


class TestQueriesEndpoint:
    def test_snapshot_shape(self, server):
        payload = json.loads(fetch(server, "/queries").read())
        assert set(payload) == {"queries", "slow"}

    def test_custom_query_source(self):
        log = QueryLog(slow_threshold=0.0)
        log.record(QueryRecord(fingerprint="fp1", query="select guide.x",
                               engine="chorel-native", rows=2,
                               compile_seconds=0.001,
                               execute_seconds=0.004),
                   plan_text="Scan  (rows 0 -> 1)")
        with MetricsHTTPServer(query_source=log.snapshot) as server:
            response = fetch(server, "/queries")
            assert response.headers["Content-Type"] == "application/json"
            payload = json.loads(response.read())
        agg = payload["queries"]["fp1"]
        assert agg["count"] == 1 and agg["rows"] == 2
        [capture] = payload["slow"]
        assert capture["plan"] == "Scan  (rows 0 -> 1)"

    def test_engine_runs_appear(self, server):
        from repro import ChorelEngine, build_doem
        from tests.conftest import make_guide_db, make_guide_history
        doem = build_doem(make_guide_db(), make_guide_history())
        engine = ChorelEngine(doem, name="guide")
        engine.run("select guide.restaurant.name")
        fingerprint = engine.last_compiled.fingerprint
        payload = json.loads(fetch(server, "/queries").read())
        assert fingerprint in payload["queries"]


class TestRouting:
    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server, "/nope")
        assert excinfo.value.code == 404

    def test_health_default(self, server):
        payload = json.loads(fetch(server, "/health").read())
        assert payload["status"] == "healthy"
