"""Query profiling: observation must not change evaluation."""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    LorelEngine,
    TranslatingChorelEngine,
    build_doem,
    current_snapshot,
    profile_query,
    random_database,
    random_history,
)
from repro.obs.profile import QueryProfile
from repro.obs.trace import get_tracer

UPD_QUERY = ("select T, NV from guide.restaurant.price<upd at T to NV> "
             "where T > 1Jan97")
ADD_QUERY = "select guide.<add at T>restaurant"


@pytest.fixture(autouse=True)
def tracer_off():
    tracer = get_tracer()
    tracer.enabled = False
    tracer.clear()
    yield
    tracer.enabled = False
    tracer.clear()


def rows(result):
    return sorted(map(str, result))


class TestEquivalence:
    @pytest.mark.parametrize("make_engine", [
        ChorelEngine, IndexedChorelEngine, TranslatingChorelEngine])
    def test_profiled_rows_equal_unprofiled(self, guide_doem, make_engine):
        engine = make_engine(guide_doem, name="guide")
        plain = engine.run(UPD_QUERY)
        profiled = engine.run(UPD_QUERY, profile=True)
        assert rows(profiled) == rows(plain)
        assert isinstance(engine.last_profile, QueryProfile)
        assert engine.last_profile.rows == len(plain)

    def test_lorel_engine_profiles_too(self, guide_doem):
        snapshot = current_snapshot(guide_doem)
        engine = LorelEngine(snapshot, name="guide")
        query = "select guide.restaurant.name"
        plain = engine.run(query)
        profiled = engine.run(query, profile=True)
        assert rows(profiled) == rows(plain)
        assert engine.last_profile.backend == "lorel"
        assert "lorel.eval" in engine.last_profile.phase_times()

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500),
           steps=st.integers(min_value=1, max_value=4))
    def test_profiled_equals_unprofiled_over_random_worlds(self, seed, steps):
        """Property: for arbitrary generated histories, profiling a query
        returns exactly the rows the plain run returns, on both the
        native and the indexed backend."""
        db = random_database(seed=seed, nodes=25)
        history = random_history(db, seed=seed, steps=steps, set_size=6)
        doem = build_doem(db, history)
        times = history.timestamps()
        low = times[len(times) // 2]
        query = f"select T from root.# X, X.%<cre at T> where T > {low}"
        for make_engine in (ChorelEngine, IndexedChorelEngine):
            engine = make_engine(doem, name="root")
            assert rows(engine.run(query, profile=True)) == \
                rows(engine.run(query))


class TestObservation:
    def test_tracer_left_as_found(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        engine.run(UPD_QUERY, profile=True)
        tracer = get_tracer()
        assert not tracer.enabled
        assert tracer.roots == []  # one-off profiling leaves no residue

    def test_phase_nesting_native(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        engine.run(UPD_QUERY, profile=True)
        root = engine.last_profile.spans[0]
        assert root.name == "chorel.query"
        names = [child.name for child in root.children]
        assert "chorel.parse" in names
        assert "lorel.eval" in names

    def test_phase_nesting_indexed(self, guide_doem):
        engine = IndexedChorelEngine(guide_doem, name="guide")
        engine.run(ADD_QUERY, profile=True)
        profile = engine.last_profile
        root = profile.spans[0]
        assert root.name == "chorel.query"
        names = [child.name for child in root.children]
        assert names == ["chorel.parse", "chorel.optimize",
                         "chorel.index_scan"]
        assert profile.plan is not None
        assert "index-scan" in profile.plan

    def test_phase_nesting_translate(self, guide_doem):
        """The full translate -> optimize -> eval pipeline shows up as
        one nested span tree under the query root."""
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        engine.run(UPD_QUERY, profile=True)
        root = engine.last_profile.spans[0]
        assert root.name == "chorel.query"
        names = [child.name for child in root.children]
        assert "chorel.parse" in names
        assert "chorel.translate" in names
        assert "lorel.eval" in names
        assert engine.last_profile.plan.startswith("translate-to-lorel:")

    def test_counters_are_per_run_deltas(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        engine.run(UPD_QUERY)  # warm the counters: deltas must not see this
        visits_after_one = engine.annotation_visits
        assert visits_after_one > 0
        engine.run(UPD_QUERY, profile=True)
        delta = engine.last_profile.counters["view.annotation_visits"]
        assert delta == visits_after_one  # one run's worth, not cumulative

    def test_indexed_counters_present(self, guide_doem):
        engine = IndexedChorelEngine(guide_doem, name="guide")
        engine.run(ADD_QUERY, profile=True)
        counters = engine.last_profile.counters
        assert counters["engine.indexed_queries"] == 1
        assert counters["index.lookups"] >= 1
        assert "path_index.hit_rate" in counters

    def test_profile_query_function(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        result, profile = profile_query(engine, UPD_QUERY)
        assert rows(result) == rows(engine.run(UPD_QUERY))
        assert profile.backend == "chorel-native"
        assert profile.total_seconds > 0


class TestRendering:
    def test_render_contains_the_headline_facts(self, guide_doem):
        engine = IndexedChorelEngine(guide_doem, name="guide")
        engine.run(ADD_QUERY, profile=True)
        report = engine.last_profile.render()
        assert report.startswith(f"EXPLAIN {ADD_QUERY}")
        assert "backend: chorel-indexed" in report
        assert "chorel.index_scan" in report
        assert "index.hit_rate" in report

    def test_json_round_trip(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        engine.run(UPD_QUERY, profile=True)
        payload = json.loads(engine.last_profile.to_json())
        assert payload["backend"] == "chorel-native"
        assert payload["rows"] == engine.last_profile.rows
        assert payload["trace"][0]["name"] == "chorel.query"
        assert payload["phases"]["chorel.query"] == \
            pytest.approx(payload["total_seconds"])
