"""Thread-safety stress tests for the metrics registry.

These hammer the exact operations the parallel executor and concurrent
QSS poll loop perform from worker threads.  Before the instrument locks
landed, the counter increments below lost updates reliably (a ``+=``
read-modify-write under contention); the totals here must be exact, not
approximate.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry

THREADS = 2
ROUNDS = 20_000


def hammer(workers, target):
    threads = [threading.Thread(target=target, args=(i,))
               for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCounterContention:
    def test_two_threads_lose_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress.hits")

        def work(_):
            for _ in range(ROUNDS):
                counter.inc()

        hammer(THREADS, work)
        assert counter.value == THREADS * ROUNDS

    def test_group_counters_under_contention(self):
        registry = MetricsRegistry()
        group = registry.group("stress.group", ("a", "b"))

        def work(index):
            field = "a" if index % 2 == 0 else "b"
            for _ in range(ROUNDS):
                group[field].inc(2)

        hammer(2, work)
        assert group["a"].value == 2 * ROUNDS
        assert group["b"].value == 2 * ROUNDS


class TestHistogramContention:
    def test_observe_keeps_count_and_buckets_consistent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stress.latency")

        def work(index):
            value = 0.002 if index % 2 == 0 else 0.7
            for _ in range(ROUNDS // 4):
                histogram.observe(value)

        hammer(2, work)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2 * (ROUNDS // 4)
        assert sum(snapshot["buckets"].values()) == snapshot["count"]


class TestGaugeContention:
    def test_set_max_keeps_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("stress.peak")

        def work(index):
            for value in range(ROUNDS // 10):
                gauge.set_max(value * 10 + index)

        hammer(2, work)
        assert gauge.value == (ROUNDS // 10 - 1) * 10 + 1


class TestRegistryContention:
    def test_concurrent_instrument_creation_is_single(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(4)

        def work(_):
            barrier.wait(timeout=5)
            seen.append(registry.counter("stress.shared"))

        hammer(4, work)
        assert len({id(counter) for counter in seen}) == 1

    def test_snapshot_during_mutation(self):
        """Snapshots race group creation and increments without crashing
        (RuntimeError: dict changed size) and report consistent types."""
        registry = MetricsRegistry()
        stop = threading.Event()
        groups = []

        def churn(_):
            while not stop.is_set():
                group = registry.group("stress.churn", ("x",))
                group["x"].inc()
                groups.append(group)
                if len(groups) > 300:
                    break

        def snap(_):
            while not stop.is_set():
                snapshot = registry.snapshot()
                value = snapshot.get("stress.churn.x")
                assert value is None or isinstance(value, int)
                if len(groups) > 300:
                    break

        threads = [threading.Thread(target=churn, args=(0,)),
                   threading.Thread(target=snap, args=(1,))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        stop.set()
        assert registry.snapshot()["stress.churn.x"] == len(groups)
