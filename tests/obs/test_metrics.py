"""The metrics registry: instruments, groups, thin-view stats, exports."""

import gc
import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5
        gauge.reset()
        assert gauge.value == 0

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"le_0.01": 1, "le_0.1": 2,
                                   "le_1": 1, "le_inf": 1}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5.605)
        histogram.reset()
        assert histogram.snapshot()["count"] == 0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="x"):
            reg.gauge("x")

    def test_group_family_summation(self):
        """Registry snapshots sum every live instance of a family while
        each group still reads independently."""
        reg = MetricsRegistry()
        one = reg.group("fam", ("hits",))
        two = reg.group("fam", ("hits",))
        one["hits"].inc(3)
        two["hits"].inc(4)
        assert one["hits"].value == 3
        assert reg.snapshot()["fam.hits"] == 7

    def test_dead_groups_stop_contributing(self):
        reg = MetricsRegistry()
        keep = reg.group("fam", ("hits",))
        keep["hits"].inc(1)
        dead = reg.group("fam", ("hits",))
        dead["hits"].inc(100)
        assert reg.snapshot()["fam.hits"] == 101
        del dead
        gc.collect()
        assert reg.snapshot()["fam.hits"] == 1

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("qss.polls").inc()
        reg.counter("repro.diff.runs").inc()
        assert set(reg.snapshot("qss")) == {"qss.polls"}

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        group = reg.group("fam", ("hits",))
        group["hits"].inc(5)
        reg.reset()
        assert reg.snapshot() == {"c": 0, "fam.hits": 0}

    def test_export_json(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(2)
        assert json.loads(reg.export_json()) == {"a.b": 2}

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("qss.polls").inc(3)
        histogram = reg.histogram("qss.poll_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        text = reg.render_text()
        assert "qss_polls 3" in text
        assert 'qss_poll_seconds_bucket{le="0.1"} 1' in text
        assert 'qss_poll_seconds_bucket{le="+Inf"} 0' in text
        assert "qss_poll_seconds_count 1" in text

    def test_render_text_help_and_type_lines(self):
        """Prometheus exposition: every family carries # HELP and # TYPE
        with the right metric kind, immediately before its samples."""
        reg = MetricsRegistry()
        reg.counter("qss.polls").inc(3)
        reg.gauge("qss.backlog").set(2)
        reg.histogram("qss.poll_seconds", buckets=(0.1,)).observe(0.05)
        lines = reg.render_text().splitlines()
        for flat, kind in (("qss_polls", "counter"),
                           ("qss_backlog", "gauge"),
                           ("qss_poll_seconds", "histogram")):
            type_line = f"# TYPE {flat} {kind}"
            assert type_line in lines, type_line
            position = lines.index(type_line)
            assert lines[position - 1].startswith(f"# HELP {flat} ")
            assert lines[position + 1].startswith(flat)

    def test_render_text_prefix_filter_keeps_headers(self):
        reg = MetricsRegistry()
        reg.counter("qss.polls").inc()
        reg.counter("repro.diff.runs").inc()
        text = reg.render_text("qss")
        assert "# TYPE qss_polls counter" in text
        assert "repro_diff_runs" not in text

    def test_global_registry_is_a_singleton(self):
        assert registry() is registry()


class TestThinViewStats:
    """The migrated stats classes keep their attribute APIs while routing
    every read and write through registered counters."""

    def test_index_stats_attribute_api(self):
        from repro.lore.indexes import IndexStats
        stats = IndexStats()
        stats.lookups += 2
        stats.hits = 1
        assert stats.lookups == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5
        assert stats.as_dict()["lookups"] == 2
        assert stats._metrics["lookups"].value == 2  # backed by the group
        stats.reset()
        assert stats.lookups == 0

    def test_index_stats_feed_the_global_registry(self):
        from repro.lore.indexes import IndexStats
        before = registry().snapshot().get("repro.index.lookups", 0)
        stats = IndexStats()
        stats.lookups += 7
        after = registry().snapshot()["repro.index.lookups"]
        assert after - before == 7
        del stats
        gc.collect()
        assert registry().snapshot().get("repro.index.lookups", 0) == before

    def test_snapshot_cache_stats(self):
        from repro.doem.snapshot import SnapshotCacheStats
        stats = SnapshotCacheStats()
        stats.lookups += 4
        stats.exact_hits += 1
        stats.incremental += 2
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["exact_hits"] == 1

    def test_engine_stats(self):
        from repro.chorel.optimize import EngineStats
        stats = EngineStats()
        stats.indexed_queries += 3
        stats.fallback_queries += 1
        assert stats.total == 4
        assert stats.pushdown_rate == 0.75
        assert stats.as_dict()["total"] == 4

    def test_view_annotation_visits(self, guide_doem):
        from repro.lorel.views import DOEMView
        view = DOEMView(guide_doem)
        view.annotation_visits += 5
        assert view.annotation_visits == 5
        assert view._metrics["annotation_visits"].value == 5
        view.annotation_visits = 0
        assert view.annotation_visits == 0
