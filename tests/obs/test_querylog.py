"""The plan-fingerprinted query log: aggregates, slow capture, attribution.

:mod:`repro.obs.querylog` is the always-on record of every planner
execution.  These tests pin the aggregate math, the ring-buffer bounds,
the ``REPRO_SLOW_QUERY_MS`` env threshold (shared with the QSS slow-poll
log), thread-local attribution, the JSONL sink, the ``query_completed``
event, and the engine integration (every ``run`` lands one record keyed
by the compiled plan's fingerprint).
"""

from __future__ import annotations

import json

import pytest

from repro import ChorelEngine, build_doem
from repro.obs.events import configure_events, disable_events
from repro.obs.querylog import (
    ENV_SLOW_QUERY_MS,
    QueryLog,
    QueryRecord,
    current_attribution,
    query_attribution,
    query_log,
    slow_query_threshold_ms,
    slow_query_threshold_seconds,
)
from tests.conftest import make_guide_db, make_guide_history


def record(fingerprint="abc123def456", *, rows=3, execute=0.002,
           compile_s=0.001, engine="chorel-native", **extra) -> QueryRecord:
    return QueryRecord(fingerprint=fingerprint, query="select guide.x",
                       engine=engine, rows=rows,
                       compile_seconds=compile_s, execute_seconds=execute,
                       **extra)


class TestThreshold:
    def test_unset_means_none(self):
        assert slow_query_threshold_ms(environ={}) is None
        assert slow_query_threshold_ms(environ={ENV_SLOW_QUERY_MS: ""}) \
            is None
        assert slow_query_threshold_seconds(environ={}) is None

    def test_parses_ms_and_converts(self):
        env = {ENV_SLOW_QUERY_MS: "250"}
        assert slow_query_threshold_ms(environ=env) == 250.0
        assert slow_query_threshold_seconds(environ=env) == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            slow_query_threshold_ms(environ={ENV_SLOW_QUERY_MS: "-1"})

    def test_env_drives_capture_per_record(self, monkeypatch):
        """No instance threshold: the env var is consulted per record,
        so exporting it affects a running process's next queries."""
        log = QueryLog()
        monkeypatch.delenv(ENV_SLOW_QUERY_MS, raising=False)
        log.record(record(execute=5.0))
        assert log.aggregates()["abc123def456"]["slow"] == 0
        monkeypatch.setenv(ENV_SLOW_QUERY_MS, "1")
        log.record(record(execute=5.0), plan_text="Scan  (rows 0 -> 1)")
        agg = log.aggregates()["abc123def456"]
        assert agg["slow"] == 1
        [capture] = log.slow_queries()
        assert capture["plan"] == "Scan  (rows 0 -> 1)"

    def test_instance_threshold_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SLOW_QUERY_MS, "100000")
        log = QueryLog(slow_threshold=0.001)
        log.record(record(execute=5.0))
        assert log.aggregates()["abc123def456"]["slow"] == 1


class TestQueryLog:
    def test_aggregate_math(self):
        log = QueryLog()
        log.record(record(rows=2, execute=0.004, compile_s=0.001))
        log.record(record(rows=3, execute=0.009, compile_s=0.001))
        agg = log.aggregates()["abc123def456"]
        assert agg["count"] == 2
        assert agg["rows"] == 5
        assert agg["total_seconds"] == pytest.approx(0.015)
        assert agg["mean_seconds"] == pytest.approx(0.0075)
        assert agg["max_seconds"] == pytest.approx(0.010)
        assert agg["engines"] == ["chorel-native"]

    def test_ring_buffer_bounds_memory(self):
        log = QueryLog(capacity=4)
        for index in range(10):
            log.record(record(f"fp{index:02}"))
        assert len(log) == 4
        assert [r.fingerprint for r in log.recent()] == \
            ["fp06", "fp07", "fp08", "fp09"]
        assert [r.fingerprint for r in log.recent(limit=2)] == \
            ["fp08", "fp09"]
        # Aggregates survive ring eviction -- they are cumulative.
        assert len(log.aggregates()) == 10

    def test_snapshot_shape_is_json_clean(self):
        log = QueryLog(slow_threshold=0.0)
        log.record(record(), plan_text="Scan")
        snapshot = log.snapshot()
        json.dumps(snapshot)
        assert set(snapshot) == {"queries", "slow"}

    def test_constructor_validation(self):
        for bad in (dict(capacity=0), dict(slow_capacity=0),
                    dict(slow_threshold=-1.0)):
            with pytest.raises(ValueError):
                QueryLog(**bad)

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        log = QueryLog(path=path)
        log.record(record(rows=7))
        log.record(record(rows=1))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["rows"] for line in lines] == [7, 1]
        assert lines[0]["fingerprint"] == "abc123def456"

    def test_jsonl_failures_never_raise(self, tmp_path):
        log = QueryLog(path=tmp_path / "no" / "such" / "dir" / "q.jsonl")
        log.record(record())  # advisory sink: OSError swallowed
        assert len(log) == 1

    def test_reset(self):
        log = QueryLog(slow_threshold=0.0)
        log.record(record(), plan_text="Scan")
        log.reset()
        assert len(log) == 0
        assert log.aggregates() == {}
        assert log.slow_queries() == []


class TestAttribution:
    def test_nesting_inner_shadows_outer(self):
        assert current_attribution() == {}
        with query_attribution(subscription="outer", extra=1):
            with query_attribution(subscription="inner"):
                assert current_attribution() == \
                    {"subscription": "inner", "extra": 1}
            assert current_attribution() == \
                {"subscription": "outer", "extra": 1}
        assert current_attribution() == {}

    def test_records_carry_attribution(self):
        log = QueryLog()
        with query_attribution(subscription="cheap-eats"):
            log.record(record())
        [rec] = log.recent()
        assert rec.attribution == {"subscription": "cheap-eats"}
        assert rec.to_dict()["attribution"] == \
            {"subscription": "cheap-eats"}


class TestQueryCompletedEvent:
    @pytest.fixture(autouse=True)
    def _clean_events(self):
        disable_events()
        yield
        disable_events()

    def test_one_event_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configure_events(path)
        log = QueryLog()
        log.record(record(rows=4))
        disable_events()
        [line] = [json.loads(line)
                  for line in path.read_text().splitlines()
                  if json.loads(line)["type"] == "query_completed"]
        assert line["fingerprint"] == "abc123def456"
        assert line["rows"] == 4
        assert line["engine"] == "chorel-native"
        assert line["wall_seconds"] == pytest.approx(0.003)

    def test_per_type_sampling_honored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configure_events(path, sample={"query_completed": 3})
        log = QueryLog()
        for _ in range(9):
            log.record(record())
        disable_events()
        kept = [json.loads(line)
                for line in path.read_text().splitlines()
                if json.loads(line)["type"] == "query_completed"]
        assert len(kept) == 3  # every 3rd, deterministic


class TestEngineIntegration:
    @pytest.fixture(autouse=True)
    def _fresh_log(self):
        # The process-global log may arrive full (its ring is bounded,
        # so "one more run" would not grow len()) from earlier suites.
        query_log().reset()
        yield
        query_log().reset()

    def test_every_run_lands_one_record(self):
        doem = build_doem(make_guide_db(), make_guide_history())
        engine = ChorelEngine(doem, name="guide")
        log = query_log()
        before = len(log)
        compiled = engine.compile("select guide.restaurant.name")
        engine.run("select guide.restaurant.name")
        records = log.recent()
        assert len(log) == before + 1
        rec = records[-1]
        assert rec.fingerprint == compiled.fingerprint
        assert rec.engine == "chorel-native"
        assert rec.rows == 3
        assert rec.analyzed is False
        agg = log.aggregates()[compiled.fingerprint]
        assert agg["count"] >= 1

    def test_analyzed_flag_and_slow_plan_capture(self, monkeypatch):
        monkeypatch.setenv(ENV_SLOW_QUERY_MS, "0")
        doem = build_doem(make_guide_db(), make_guide_history())
        engine = ChorelEngine(doem, name="guide")
        log = query_log()
        engine.run("select guide.restaurant.name", analyze=True)
        rec = log.recent()[-1]
        assert rec.analyzed is True
        capture = log.slow_queries()[-1]
        assert "rows" in capture["plan"]  # the ANALYZE tree, not EXPLAIN
