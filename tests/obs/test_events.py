"""The structured event log: levels, sampling, rotation, activation."""

from __future__ import annotations

import json
import sys

import pytest

from repro.obs.events import (
    EventLog,
    _parse_sample_spec,
    configure_events,
    configure_events_from_env,
    disable_events,
    emit_event,
    event_log,
    events_enabled,
)


@pytest.fixture(autouse=True)
def _clean_global_sink():
    disable_events()
    yield
    disable_events()


def read_lines(path):
    return [json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()]


class TestEventLog:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        assert log.emit("query_compiled", indexed=True, rows=3)
        assert log.emit("cache_eviction", cache="snapshot")
        log.close()
        first, second = read_lines(path)
        assert first["type"] == "query_compiled"
        assert first["level"] == "info"
        assert first["indexed"] is True and first["rows"] == 3
        assert {"ts", "pid"} <= first.keys()
        assert second["type"] == "cache_eviction"

    def test_level_floor_filters_below(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, level="warning")
        assert not log.emit("rule_fired", level="debug")
        assert not log.emit("query_compiled", level="info")
        assert log.emit("poll_timeout", level="warning")
        assert log.emit("worker_crash", level="error")
        log.close()
        assert [line["type"] for line in read_lines(path)] == \
            ["poll_timeout", "worker_crash"]

    def test_unknown_level_raises(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(KeyError):
            log.emit("oops", level="loud")
        log.close()
        with pytest.raises(ValueError):
            EventLog(tmp_path / "other.jsonl", level="loud")

    def test_sampling_is_deterministic_one_in_n(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, level="debug",
                       sample={"rule_fired": 3, "shard_dispatched": 0})
        for index in range(9):
            log.emit("rule_fired", level="debug", index=index)
        for _ in range(4):
            log.emit("shard_dispatched", level="debug")
        log.emit("query_compiled")  # unlisted types are always kept
        log.close()
        lines = read_lines(path)
        kept = [line["index"] for line in lines
                if line["type"] == "rule_fired"]
        assert kept == [0, 3, 6]  # every 3rd, starting at the first
        assert not any(line["type"] == "shard_dispatched" for line in lines)
        assert lines[-1]["type"] == "query_compiled"

    def test_rotation_keeps_backups(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=200, backups=2)
        for index in range(30):
            log.emit("query_compiled", index=index)
        log.close()
        assert path.exists()
        assert (tmp_path / "events.jsonl.1").exists()
        rotations = log._metrics["rotations"].value
        assert rotations >= 2
        # Nothing was lost beyond the dropped oldest backups: the most
        # recent surviving file ends at the last event emitted.  (The
        # current file may be freshly rotated and empty.)
        surviving = []
        for candidate in (path, tmp_path / "events.jsonl.1"):
            surviving.extend(read_lines(candidate))
        assert max(line["index"] for line in surviving) == 29

    def test_stderr_sink_never_rotates(self, capsys):
        log = EventLog("-", max_bytes=1)
        log.emit("worker_crash", level="error", detail="x")
        log.emit("worker_crash", level="error", detail="y")
        log.close()  # must not close the real stderr
        captured = capsys.readouterr()
        assert captured.err.count("worker_crash") == 2
        assert sys.stderr.writable()


class TestSampleSpec:
    def test_parse(self):
        assert _parse_sample_spec("rule_fired=10, shard_dispatched=0") == \
            {"rule_fired": 10, "shard_dispatched": 0}
        assert _parse_sample_spec("") == {}

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            _parse_sample_spec("rule_fired")


class TestGlobalSink:
    def test_emit_event_disabled_is_noop(self):
        assert emit_event("query_compiled") is False
        assert event_log() is None

    def test_configure_and_emit(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configure_events(path, level="debug")
        assert events_enabled()
        assert emit_event("rule_fired", level="debug", rule="x")
        disable_events()
        assert not events_enabled()
        assert read_lines(path)[0]["rule"] == "x"

    def test_env_activation(self, tmp_path):
        path = tmp_path / "env_events.jsonl"
        log = configure_events_from_env({
            "REPRO_EVENTS": str(path),
            "REPRO_EVENTS_LEVEL": "warning",
            "REPRO_EVENTS_SAMPLE": "slow_poll=2",
            "REPRO_EVENTS_MAX_BYTES": "4096",
        })
        assert log is event_log()
        assert log.level == "warning"
        assert log.sample == {"slow_poll": 2}
        assert log.max_bytes == 4096
        assert not emit_event("query_compiled", level="info")
        assert emit_event("poll_timeout", level="warning")

    def test_env_unset_leaves_events_off(self):
        assert configure_events_from_env({}) is None
        assert not events_enabled()

    def test_written_and_filtered_are_counted(self, tmp_path):
        log = configure_events(tmp_path / "e.jsonl", level="info")
        emit_event("query_compiled")
        emit_event("rule_fired", level="debug")
        assert log._metrics["written"].value == 1
        assert log._metrics["level_filtered"].value == 1
