"""Tests for the atomic value domain and Lorel's forgiving coercion."""

import pytest

from repro import COMPLEX, parse_timestamp
from repro.errors import ValueError_
from repro.oem.values import (
    check_value,
    coerce_pair,
    compare,
    is_atomic_value,
    like,
    value_repr,
)


class TestValueDomain:
    def test_atomic_values(self):
        for value in [1, 2.5, "x", True, False, parse_timestamp("1Jan97")]:
            assert is_atomic_value(value)

    def test_non_atomic_values(self):
        for value in [COMPLEX, None, [1], {"a": 1}, object()]:
            assert not is_atomic_value(value)

    def test_check_value_accepts_complex(self):
        assert check_value(COMPLEX) is COMPLEX

    def test_check_value_rejects_lists(self):
        with pytest.raises(ValueError_):
            check_value([1, 2])

    def test_check_value_rejects_none(self):
        with pytest.raises(ValueError_):
            check_value(None)

    def test_complex_is_singleton_and_falsy(self):
        from repro.oem.values import Complex
        assert Complex() is COMPLEX
        assert not COMPLEX

    def test_complex_copy_is_identity(self):
        import copy
        assert copy.copy(COMPLEX) is COMPLEX
        assert copy.deepcopy(COMPLEX) is COMPLEX

    def test_value_repr(self):
        assert value_repr(COMPLEX) == "C"
        assert value_repr(10) == "10"
        assert value_repr("x") == "'x'"


class TestCoercion:
    """The behaviour of Example 4.1: coerce or return False, never raise."""

    def test_int_vs_real(self):
        assert compare(10, 20.5, "<")
        assert compare(20.5, 10, ">")

    def test_numeric_string_coerces(self):
        assert compare("10", 10, "=")
        assert compare(10, "10.5", "<")

    def test_non_numeric_string_fails_quietly(self):
        # "moderate" < 20.5 is False, not an error (Example 4.1).
        assert not compare("moderate", 20.5, "<")
        assert not compare("moderate", 20.5, ">")
        assert not compare("moderate", 20.5, "=")

    def test_complex_never_compares(self):
        assert not compare(COMPLEX, COMPLEX, "=")
        assert not compare(COMPLEX, 10, "=")

    def test_none_never_compares(self):
        assert not compare(None, 10, "=")
        assert not compare(10, None, "!=")

    def test_string_string(self):
        assert compare("abc", "abd", "<")
        assert compare("abc", "abc", "=")
        assert compare("abc", "abd", "!=")

    def test_timestamp_vs_string(self):
        ts = parse_timestamp("5Jan97")
        assert compare(ts, "8Jan97", "<")
        assert compare("8Jan97", ts, ">")
        assert compare(ts, "1997-01-05", "=")

    def test_timestamp_vs_non_timestamp_string(self):
        assert not compare(parse_timestamp("5Jan97"), "hello", "=")
        assert not compare(parse_timestamp("5Jan97"), "hello", "<")

    def test_two_timestampish_strings(self):
        assert compare("4Jan97", "1997-01-04", "=")
        assert compare("4Jan97", "8Jan97", "<")

    def test_bool_as_number(self):
        assert compare(True, 1, "=")
        assert compare(False, 0, "=")
        assert compare(True, 0.5, ">")

    def test_all_operators(self):
        assert compare(1, 2, "<") and compare(1, 2, "<=")
        assert compare(2, 1, ">") and compare(2, 1, ">=")
        assert compare(1, 1, "=") and compare(1, 1, "==")
        assert compare(1, 2, "!=") and compare(1, 2, "<>")

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError_):
            compare(1, 2, "<<")

    def test_coerce_pair_no_coercion(self):
        assert coerce_pair("abc", 5) is None

    def test_coerce_pair_numbers(self):
        assert coerce_pair(1, "2") == (1, 2)

    def test_scientific_notation_string(self):
        assert compare("1e3", 1000, "=")


class TestLike:
    def test_percent(self):
        assert like("Lytton Street", "%Lytton%")
        assert like("Lytton", "Lytton%")
        assert not like("Hamilton", "%Lytton%")

    def test_underscore(self):
        assert like("cat", "c_t")
        assert not like("cart", "c_t")

    def test_exact(self):
        assert like("abc", "abc")
        assert not like("abc", "abd")

    def test_coerces_numbers(self):
        assert like(120, "12%")
        assert like(20.5, "%.5")

    def test_coerces_booleans(self):
        assert like(True, "true")
        assert like(False, "f%")

    def test_coerces_timestamps(self):
        assert like(parse_timestamp("1Jan97"), "%Jan97")

    def test_complex_never_matches(self):
        assert not like(COMPLEX, "%")

    def test_multiline_text(self):
        assert like("line1\nline2", "line1%line2")
