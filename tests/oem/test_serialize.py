"""Tests for the textual OEM format and the JSON bridge."""

import pytest

from repro import COMPLEX, OEMDatabase, dumps, from_json, loads, parse_timestamp, to_json
from repro.errors import SerializationError


class TestDumpLoadRoundTrip:
    def test_atomic_values(self):
        db = OEMDatabase(root="r")
        for node, value in [("i", 42), ("f", 2.5), ("s", "hello"),
                            ("t", True), ("z", False),
                            ("ts", parse_timestamp("1Jan97"))]:
            db.create_node(node, value)
            db.add_arc("r", "v", node)
        assert loads(dumps(db)).same_as(db)

    def test_empty_complex(self):
        db = OEMDatabase(root="r")
        db.create_node("e", COMPLEX)
        db.add_arc("r", "empty", "e")
        assert loads(dumps(db)).same_as(db)

    def test_shared_subobject(self):
        db = OEMDatabase(root="r")
        db.create_node("shared", 7)
        db.create_node("a", COMPLEX)
        db.create_node("b", COMPLEX)
        db.add_arc("r", "a", "a")
        db.add_arc("r", "b", "b")
        db.add_arc("a", "v", "shared")
        db.add_arc("b", "v", "shared")
        restored = loads(dumps(db))
        assert restored.same_as(db)

    def test_cycle(self):
        db = OEMDatabase(root="r")
        db.create_node("a", COMPLEX)
        db.add_arc("r", "down", "a")
        db.add_arc("a", "up", "r")
        assert loads(dumps(db)).same_as(db)

    def test_guide_round_trip(self, guide_db):
        assert loads(dumps(guide_db)).same_as(guide_db)

    def test_special_characters_in_strings(self):
        db = OEMDatabase(root="r")
        db.create_node("s", 'quote " backslash \\ newline \n end')
        db.add_arc("r", "v", "s")
        assert loads(dumps(db)).same_as(db)

    def test_quoted_labels_and_ids(self):
        db = OEMDatabase(root="r")
        db.create_node("odd id!", 1)
        db.add_arc("r", "label with spaces", "odd id!")
        assert loads(dumps(db)).same_as(db)

    def test_ampersand_labels(self):
        # Encoding labels (&val etc.) must serialize, for the Lore store.
        db = OEMDatabase(root="r")
        db.create_node("v", 5)
        db.add_arc("r", "&val", "v")
        assert loads(dumps(db)).same_as(db)

    def test_timestamp_with_time_of_day(self):
        db = OEMDatabase(root="r")
        db.create_node("ts", parse_timestamp("30Dec96 11:30pm"))
        db.add_arc("r", "when", "ts")
        assert loads(dumps(db)).same_as(db)

    def test_negative_and_float_numbers(self):
        db = OEMDatabase(root="r")
        db.create_node("n", -17)
        db.create_node("f", 0.125)
        db.add_arc("r", "a", "n")
        db.add_arc("r", "b", "f")
        assert loads(dumps(db)).same_as(db)


class TestLoadsErrors:
    def test_must_start_with_id(self):
        with pytest.raises(SerializationError):
            loads("{}")

    def test_unterminated_string(self):
        with pytest.raises(SerializationError):
            loads('&r { v: &x "unterminated }')

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError):
            loads("&r {} extra")

    def test_error_carries_location(self):
        try:
            loads("&r {\n  bad bad\n}")
        except SerializationError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected SerializationError")

    def test_comments_allowed(self):
        db = loads("# header comment\n&r { # inline\n v: &x 1\n}\n")
        assert db.value("x") == 1


class TestJsonBridge:
    def test_tree_round_trip(self):
        value = {"restaurant": [
            {"name": "Janta", "price": 10},
            {"name": "Bangkok", "price": "moderate",
             "address": {"street": "Lytton", "city": "Palo Alto"}},
        ]}
        db = from_json(value, root="guide")
        assert to_json(db) == {"restaurant": [
            {"name": "Janta", "price": 10},
            {"address": {"city": "Palo Alto", "street": "Lytton"},
             "name": "Bangkok", "price": "moderate"},
        ]}

    def test_scalar_top_level(self):
        db = from_json(42)
        assert to_json(db) == {"value": 42}

    def test_null_becomes_empty_string(self):
        db = from_json({"a": None})
        assert to_json(db) == {"a": ""}

    def test_timestamp_convention(self):
        db = from_json({"when": "@1Jan97"})
        node = next(iter(db.children(db.root, "when")))
        assert db.value(node) == parse_timestamp("1Jan97")
        assert to_json(db) == {"when": "@1Jan97"}

    def test_cycle_rejected(self):
        db = OEMDatabase(root="r")
        db.create_node("a", COMPLEX)
        db.add_arc("r", "down", "a")
        db.add_arc("a", "up", "r")
        with pytest.raises(SerializationError):
            to_json(db)

    def test_sharing_duplicates(self):
        db = OEMDatabase(root="r")
        db.create_node("shared", 7)
        db.create_node("a", COMPLEX)
        db.create_node("b", COMPLEX)
        db.add_arc("r", "a", "a")
        db.add_arc("r", "b", "b")
        db.add_arc("a", "v", "shared")
        db.add_arc("b", "v", "shared")
        assert to_json(db) == {"a": {"v": 7}, "b": {"v": 7}}

    def test_unsupported_json_value(self):
        with pytest.raises(SerializationError):
            from_json({"bad": object()})
