"""Tests for the GraphBuilder construction DSL."""

import pytest

from repro import COMPLEX, GraphBuilder
from repro.errors import OEMError
from repro.oem.builder import build_database


class TestBasicSpecs:
    def test_flat_atoms(self):
        db = build_database({"name": "Janta", "price": 10})
        names = [db.value(node) for node in db.children(db.root, "name")]
        assert names == ["Janta"]

    def test_nested(self):
        db = build_database({"restaurant": {"name": "Janta",
                                            "address": {"city": "PA"}}})
        restaurant = next(iter(db.children(db.root, "restaurant")))
        address = next(iter(db.children(restaurant, "address")))
        city = next(iter(db.children(address, "city")))
        assert db.value(city) == "PA"

    def test_list_fans_out(self):
        db = build_database({"item": [1, 2, 3]})
        values = sorted(db.value(node)
                        for node in db.children(db.root, "item"))
        assert values == [1, 2, 3]

    def test_mixed_list(self):
        db = build_database({"entry": ["flat", {"deep": 1}]})
        assert len(list(db.children(db.root, "entry"))) == 2

    def test_database_is_checked_valid(self):
        db = build_database({"a": {"b": {"c": 1}}})
        db.check()

    def test_unsupported_spec_rejected(self):
        with pytest.raises(OEMError):
            build_database({"bad": object()})


class TestRefs:
    def test_shared_object(self):
        builder = GraphBuilder()
        lot = builder.ref("lot")
        builder.build({
            "restaurant": [
                {"name": "Janta",
                 "parking": builder.define(lot, {"address": "Lytton lot 2"})},
                {"name": "Bangkok", "parking": lot},
            ],
        })
        db = builder.database
        assert lot.node_id is not None
        parents = sorted(arc.source for arc in db.in_arcs(lot.node_id))
        assert len(parents) == 2
        db.check()

    def test_forward_reference(self):
        builder = GraphBuilder()
        later = builder.ref("later")
        builder.build({
            "first": {"uses": later},
            "second": builder.define(later, {"name": "defined afterwards"}),
        })
        db = builder.database
        assert later.node_id is not None
        db.check()

    def test_cycle_via_root_ref(self):
        builder = GraphBuilder()
        builder.build({"child": {"back-to-top": builder.root_ref()}})
        db = builder.database
        child = next(iter(db.children(db.root, "child")))
        assert db.has_arc(child, "back-to-top", db.root)
        db.check()

    def test_atomic_ref_target(self):
        builder = GraphBuilder()
        price = builder.ref("price")
        builder.build({
            "a": {"price": builder.define(price, 10)},
            "b": {"price": price},
        })
        db = builder.database
        assert db.value(price.node_id) == 10
        assert len(list(db.in_arcs(price.node_id))) == 2

    def test_undefined_ref_rejected(self):
        builder = GraphBuilder()
        dangling = builder.ref("dangling")
        with pytest.raises(OEMError):
            builder.build({"uses": dangling})

    def test_double_definition_rejected(self):
        builder = GraphBuilder()
        ref = builder.ref("twice")
        with pytest.raises(OEMError):
            builder.build({
                "a": builder.define(ref, {"x": 1}),
                "b": builder.define(ref, {"y": 2}),
            })

    def test_figure2_shape(self):
        """Build Figure 2's shape via the DSL: shared parking + cycle."""
        builder = GraphBuilder(root="guide")
        parking = builder.ref("parking")
        bangkok = builder.ref("bangkok")
        builder.build({
            "restaurant": [
                builder.define(bangkok, {
                    "name": "Bangkok Cuisine", "price": 10,
                    "address": "120 Lytton",
                    "parking": builder.define(parking, {
                        "address": "Lytton lot 2",
                        "comment": "usually full",
                        "nearby-eats": bangkok,
                    }),
                }),
                {"name": "Janta", "cuisine": "Indian", "price": "moderate",
                 "parking": parking,
                 "address": {"street": "Lytton", "city": "Palo Alto"}},
            ],
        })
        db = builder.database
        db.check()
        # the cycle: bangkok -> parking -> bangkok
        assert db.has_arc(bangkok.node_id, "parking", parking.node_id)
        assert db.has_arc(parking.node_id, "nearby-eats", bangkok.node_id)
