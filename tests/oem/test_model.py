"""Tests for the OEM database model (Definition 2.1 semantics)."""

import pytest

from repro import COMPLEX, OEMDatabase
from repro.errors import (
    DuplicateNodeError,
    InvalidChangeError,
    OEMError,
    UnknownNodeError,
)


@pytest.fixture
def tiny():
    db = OEMDatabase(root="r")
    db.create_node("a", COMPLEX)
    db.create_node("x", 1)
    db.add_arc("r", "child", "a")
    db.add_arc("a", "val", "x")
    return db


class TestNodes:
    def test_root_exists(self):
        db = OEMDatabase(root="top")
        assert db.root == "top"
        assert db.has_node("top")
        assert db.is_complex("top")

    def test_create_and_value(self, tiny):
        assert tiny.value("x") == 1
        assert tiny.value("a") is COMPLEX
        assert tiny.is_atomic("x") and not tiny.is_atomic("a")

    def test_duplicate_id_rejected(self, tiny):
        with pytest.raises(DuplicateNodeError):
            tiny.create_node("a", 5)

    def test_unknown_node(self, tiny):
        with pytest.raises(UnknownNodeError):
            tiny.value("zzz")

    def test_len_and_contains(self, tiny):
        assert len(tiny) == 3
        assert "a" in tiny and "zzz" not in tiny

    def test_new_node_id_is_fresh(self, tiny):
        minted = {tiny.new_node_id() for _ in range(100)}
        assert len(minted) == 100
        assert not (minted & set(tiny.nodes()))

    def test_update_value(self, tiny):
        tiny.update_value("x", "hello")
        assert tiny.value("x") == "hello"

    def test_update_value_complex_with_children_stays_complex(self, tiny):
        with pytest.raises(InvalidChangeError):
            tiny.update_value("a", 5)  # 'a' still has a subobject

    def test_update_childless_complex_to_atomic(self, tiny):
        tiny.remove_arc("a", "val", "x")
        tiny.update_value("a", 5)
        assert tiny.value("a") == 5

    def test_update_atomic_to_complex(self, tiny):
        tiny.update_value("x", COMPLEX)
        assert tiny.is_complex("x")


class TestArcs:
    def test_has_arc(self, tiny):
        assert tiny.has_arc("r", "child", "a")
        assert not tiny.has_arc("r", "other", "a")

    def test_add_arc_to_atomic_parent_rejected(self, tiny):
        with pytest.raises(InvalidChangeError):
            tiny.add_arc("x", "l", "a")

    def test_add_duplicate_arc_rejected(self, tiny):
        with pytest.raises(InvalidChangeError):
            tiny.add_arc("r", "child", "a")

    def test_add_arc_unknown_endpoint(self, tiny):
        with pytest.raises(UnknownNodeError):
            tiny.add_arc("r", "l", "zzz")
        with pytest.raises(UnknownNodeError):
            tiny.add_arc("zzz", "l", "a")

    def test_same_label_multiple_children(self, tiny):
        tiny.create_node("b", 2)
        tiny.add_arc("a", "val", "b")
        assert sorted(tiny.children("a", "val")) == ["b", "x"]

    def test_same_child_multiple_labels(self, tiny):
        tiny.add_arc("r", "alias", "a")
        assert sorted(arc.label for arc in tiny.in_arcs("a")) == \
            ["alias", "child"]

    def test_remove_arc(self, tiny):
        tiny.remove_arc("a", "val", "x")
        assert not tiny.has_arc("a", "val", "x")
        assert not tiny.has_children("a")

    def test_remove_missing_arc_rejected(self, tiny):
        with pytest.raises(InvalidChangeError):
            tiny.remove_arc("r", "nope", "a")

    def test_arc_count(self, tiny):
        assert tiny.arc_count() == 2

    def test_out_labels_and_parents(self, tiny):
        assert list(tiny.out_labels("a")) == ["val"]
        assert list(tiny.parents("a")) == ["r"]

    def test_self_loop(self, tiny):
        tiny.add_arc("a", "self", "a")
        assert tiny.has_arc("a", "self", "a")
        assert "a" in tiny.children("a", "self")


class TestReachability:
    def test_all_reachable(self, tiny):
        assert tiny.reachable() == {"r", "a", "x"}
        assert tiny.unreachable_nodes() == set()

    def test_unreachable_after_removal(self, tiny):
        tiny.remove_arc("r", "child", "a")
        assert tiny.unreachable_nodes() == {"a", "x"}

    def test_collect_garbage(self, tiny):
        tiny.remove_arc("r", "child", "a")
        doomed = tiny.collect_garbage()
        assert doomed == {"a", "x"}
        assert len(tiny) == 1 and tiny.arc_count() == 0

    def test_gc_keeps_cyclic_reachable(self):
        db = OEMDatabase(root="r")
        db.create_node("a", COMPLEX)
        db.create_node("b", COMPLEX)
        db.add_arc("r", "to", "a")
        db.add_arc("a", "to", "b")
        db.add_arc("b", "back", "a")     # cycle a <-> b
        assert db.collect_garbage() == set()

    def test_gc_collects_unreachable_cycle(self):
        db = OEMDatabase(root="r")
        db.create_node("a", COMPLEX)
        db.create_node("b", COMPLEX)
        db.add_arc("r", "to", "a")
        db.add_arc("a", "to", "b")
        db.add_arc("b", "back", "a")
        db.remove_arc("r", "to", "a")
        # The a<->b cycle keeps each node individually referenced, but
        # neither is root-reachable: both must die.
        assert db.collect_garbage() == {"a", "b"}

    def test_check_passes_on_valid(self, tiny):
        tiny.check()

    def test_check_rejects_unreachable(self, tiny):
        tiny.remove_arc("r", "child", "a")
        with pytest.raises(OEMError):
            tiny.check()


class TestCopyAndEquality:
    def test_copy_is_deep(self, tiny):
        clone = tiny.copy()
        clone.update_value("x", 99)
        assert tiny.value("x") == 1
        clone.create_node("extra", 5)
        assert "extra" not in tiny

    def test_same_as(self, tiny):
        assert tiny.same_as(tiny.copy())

    def test_same_as_detects_value_change(self, tiny):
        other = tiny.copy()
        other.update_value("x", 2)
        assert not tiny.same_as(other)

    def test_same_as_detects_arc_change(self, tiny):
        other = tiny.copy()
        other.create_node("y", 3)
        other.add_arc("a", "val", "y")
        assert not tiny.same_as(other)

    def test_copy_mints_fresh_ids(self, tiny):
        clone = tiny.copy()
        assert clone.new_node_id() not in set(clone.nodes())


class TestIsomorphism:
    def test_isomorphic_to_renamed_copy(self, tiny):
        other = OEMDatabase(root="R")
        other.create_node("A", COMPLEX)
        other.create_node("X", 1)
        other.add_arc("R", "child", "A")
        other.add_arc("A", "val", "X")
        assert tiny.isomorphic_to(other)
        assert other.isomorphic_to(tiny)

    def test_not_isomorphic_different_value(self, tiny):
        other = tiny.copy()
        other.update_value("x", 2)
        assert not tiny.isomorphic_to(other)

    def test_not_isomorphic_different_shape(self, tiny):
        other = tiny.copy()
        other.create_node("y", 1)
        other.add_arc("a", "val", "y")
        assert not tiny.isomorphic_to(other)

    def test_isomorphic_with_symmetric_twins(self):
        # Two indistinguishable siblings exercise the backtracking search.
        def build(prefix):
            db = OEMDatabase(root="r")
            for index in range(2):
                node = db.create_node(f"{prefix}{index}", COMPLEX)
                db.add_arc("r", "twin", node)
                leaf = db.create_node(f"{prefix}leaf{index}", 7)
                db.add_arc(node, "v", leaf)
            return db
        assert build("a").isomorphic_to(build("b"))

    def test_isomorphic_with_cycles(self, guide_db):
        import repro.oem.serialize as ser
        clone = ser.loads(ser.dumps(guide_db))
        assert guide_db.isomorphic_to(clone)


class TestPresentation:
    def test_describe_contains_values(self, tiny):
        text = tiny.describe()
        assert "child" in text and "val" in text and "= 1" in text

    def test_describe_handles_cycles(self, guide_db):
        text = guide_db.describe()
        assert "shared" in text  # the cyclic/shared parking object

    def test_repr(self, tiny):
        assert "nodes=3" in repr(tiny)
