"""Tests for change sets and OEM histories (Section 2.2)."""

import pytest

from repro import (
    COMPLEX,
    AddArc,
    ChangeSet,
    CreNode,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    parse_timestamp,
)
from repro.errors import InvalidChangeError, InvalidHistoryError


@pytest.fixture
def db():
    base = OEMDatabase(root="r")
    base.create_node("a", COMPLEX)
    base.create_node("x", 1)
    base.add_arc("r", "child", "a")
    base.add_arc("a", "val", "x")
    return base


class TestChangeSetConflicts:
    def test_add_and_rem_same_arc_rejected(self):
        with pytest.raises(InvalidHistoryError):
            ChangeSet([AddArc("p", "l", "c"), RemArc("p", "l", "c")])

    def test_two_updates_same_node_rejected(self):
        with pytest.raises(InvalidHistoryError):
            ChangeSet([UpdNode("n", 1), UpdNode("n", 2)])

    def test_two_creates_same_node_rejected(self):
        with pytest.raises(InvalidHistoryError):
            ChangeSet([CreNode("n", 1), CreNode("n", 2)])

    def test_create_then_update_same_node_rejected(self):
        with pytest.raises(InvalidHistoryError):
            ChangeSet([CreNode("n", 1), UpdNode("n", 2)])

    def test_duplicate_operation_rejected(self):
        with pytest.raises(InvalidHistoryError):
            ChangeSet([AddArc("p", "l", "c"), AddArc("p", "l", "c")])

    def test_disjoint_operations_fine(self):
        changes = ChangeSet([AddArc("p", "l", "c"), RemArc("p", "l", "d"),
                             UpdNode("m", 1), CreNode("q", 2)])
        assert len(changes) == 4


class TestCanonicalOrder:
    def test_phases(self):
        changes = ChangeSet([
            AddArc("p", "l", "c"),
            UpdNode("n", 1),
            RemArc("p", "l", "d"),
            CreNode("c", COMPLEX),
        ])
        kinds = [type(op).__name__ for op in changes.canonical_order()]
        assert kinds == ["CreNode", "RemArc", "UpdNode", "AddArc"]

    def test_order_is_deterministic(self):
        ops = [AddArc("p", "a", "c1"), AddArc("p", "b", "c2"),
               CreNode("c1", 1), CreNode("c2", 2)]
        assert ChangeSet(ops).canonical_order() == \
            ChangeSet(list(reversed(ops))).canonical_order()

    def test_create_then_link(self, db):
        # A node created and linked in one set must survive GC.
        changes = ChangeSet([AddArc("a", "kid", "new"),
                             CreNode("new", 7)])
        doomed = changes.apply_to(db)
        assert doomed == set()
        assert db.value("new") == 7

    def test_unlinked_creation_is_garbage(self, db):
        changes = ChangeSet([CreNode("orphan", 7)])
        doomed = changes.apply_to(db)
        assert doomed == {"orphan"}
        assert "orphan" not in db

    def test_remove_then_retype(self, db):
        # Removing 'a's subobject and making 'a' atomic in one set works
        # because rem precedes upd canonically.
        changes = ChangeSet([UpdNode("a", 5), RemArc("a", "val", "x")])
        changes.apply_to(db)
        assert db.value("a") == 5
        assert "x" not in db  # x became unreachable

    def test_retype_then_extend(self, db):
        # Making 'x' complex and giving it a child in one set works
        # because upd precedes add canonically.
        changes = ChangeSet([AddArc("x", "kid", "k"), CreNode("k", 1),
                             UpdNode("x", COMPLEX)])
        changes.apply_to(db)
        assert db.is_complex("x")
        assert db.has_arc("x", "kid", "k")

    def test_is_valid_for(self, db):
        assert ChangeSet([UpdNode("x", 2)]).is_valid_for(db)
        assert not ChangeSet([UpdNode("zzz", 2)]).is_valid_for(db)
        # Validation must not mutate.
        assert db.value("x") == 1

    def test_apply_invalid_raises(self, db):
        with pytest.raises(InvalidChangeError):
            ChangeSet([AddArc("a", "val", "x")]).apply_to(db)  # arc exists

    def test_equality_is_order_insensitive(self):
        a = ChangeSet([UpdNode("n", 1), AddArc("p", "l", "c")])
        b = ChangeSet([AddArc("p", "l", "c"), UpdNode("n", 1)])
        assert a == b and hash(a) == hash(b)

    def test_created_nodes(self):
        changes = ChangeSet([CreNode("a", 1), CreNode("b", 2),
                             AddArc("r", "l", "a")])
        assert changes.created_nodes() == {"a", "b"}

    def test_filter(self):
        changes = ChangeSet([CreNode("a", 1), AddArc("r", "l", "a")])
        assert len(changes.filter(CreNode)) == 1
        assert len(changes.filter(RemArc)) == 0


class TestHistory:
    def test_timestamps_strictly_increase(self):
        history = OEMHistory()
        history.append("1Jan97", [UpdNode("x", 1)])
        with pytest.raises(InvalidHistoryError):
            history.append("1Jan97", [UpdNode("x", 2)])
        with pytest.raises(InvalidHistoryError):
            history.append("31Dec96", [UpdNode("x", 2)])

    def test_timestamp_coercion(self):
        history = OEMHistory([("1Jan97", [UpdNode("x", 1)]),
                              ("1997-01-05", [UpdNode("x", 2)])])
        t1, t2 = history.timestamps()
        assert t1 == parse_timestamp("1Jan97")
        assert t2 == parse_timestamp("5Jan97")

    def test_infinite_timestamp_rejected(self):
        from repro import POS_INF
        with pytest.raises(InvalidHistoryError):
            OEMHistory([(POS_INF, [UpdNode("x", 1)])])

    def test_apply_and_replay(self, db):
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", 2)]),
            ("2Jan97", [UpdNode("x", 3)]),
        ])
        snapshots = history.replay(db)
        assert [snap.value("x") for snap in snapshots] == [1, 2, 3]
        # replay leaves the base untouched
        assert db.value("x") == 1

    def test_snapshot_at(self, db):
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", 2)]),
            ("5Jan97", [UpdNode("x", 3)]),
        ])
        assert history.snapshot_at(db, "31Dec96").value("x") == 1
        assert history.snapshot_at(db, "1Jan97").value("x") == 2
        assert history.snapshot_at(db, "3Jan97").value("x") == 2
        assert history.snapshot_at(db, "9Jan97").value("x") == 3

    def test_prefix(self, db):
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", 2)]),
            ("5Jan97", [UpdNode("x", 3)]),
        ])
        clipped = history.prefix("2Jan97")
        assert len(clipped) == 1

    def test_is_valid_for(self, db):
        good = OEMHistory([("1Jan97", [UpdNode("x", 2)])])
        bad = OEMHistory([("1Jan97", [UpdNode("ghost", 2)])])
        assert good.is_valid_for(db)
        assert not bad.is_valid_for(db)

    def test_operation_count(self, guide_history):
        assert guide_history.operation_count() == 8

    def test_deleted_ids_affect_later_sets(self, db):
        # After 'a' (and 'x') become unreachable at t1, touching them at
        # t2 is invalid.
        history = OEMHistory([
            ("1Jan97", [RemArc("r", "child", "a")]),
            ("2Jan97", [UpdNode("x", 9)]),
        ])
        assert not history.is_valid_for(db)


class TestExample23:
    """The full Example 2.3 history against the Figure 2 database."""

    def test_history_is_valid(self, guide_db, guide_history):
        assert guide_history.is_valid_for(guide_db)

    def test_final_state_matches_figure3(self, guide_db, guide_history):
        final = guide_history.apply_to(guide_db.copy())
        assert final.value("n1") == 20
        assert final.value("n3") == "Hakata"
        assert final.has_arc("n2", "comment", "n5")
        assert not final.has_arc("r2", "parking", "n7")
        # The parking object n7 survives through Bangkok's arc.
        assert final.has_node("n7")
        final.check()
