"""Tests for the four basic change operations (Section 2.1)."""

import pytest

from repro import COMPLEX, AddArc, CreNode, OEMDatabase, RemArc, UpdNode
from repro.errors import InvalidChangeError, ValueError_


@pytest.fixture
def db():
    base = OEMDatabase(root="r")
    base.create_node("a", COMPLEX)
    base.create_node("x", 1)
    base.add_arc("r", "child", "a")
    base.add_arc("a", "val", "x")
    return base


class TestCreNode:
    def test_valid_and_apply(self, db):
        op = CreNode("fresh", 42)
        assert op.is_valid(db)
        op.apply(db)
        assert db.value("fresh") == 42

    def test_existing_id_invalid(self, db):
        op = CreNode("a", 5)
        assert not op.is_valid(db)
        with pytest.raises(InvalidChangeError):
            op.apply(db)

    def test_complex_creation(self, db):
        CreNode("c", COMPLEX).apply(db)
        assert db.is_complex("c")

    def test_illegal_value_rejected_at_construction(self):
        with pytest.raises(ValueError_):
            CreNode("n", [1, 2])  # type: ignore[arg-type]

    def test_no_inverse(self, db):
        assert CreNode("fresh", 1).inverse(db) is None

    def test_touched_nodes(self):
        assert CreNode("n", 1).touched_nodes() == {"n"}

    def test_str(self):
        assert str(CreNode("n2", COMPLEX)) == "creNode(n2, C)"


class TestUpdNode:
    def test_valid_and_apply(self, db):
        op = UpdNode("x", 99)
        assert op.is_valid(db)
        op.apply(db)
        assert db.value("x") == 99

    def test_unknown_node_invalid(self, db):
        assert not UpdNode("zzz", 1).is_valid(db)
        with pytest.raises(InvalidChangeError):
            UpdNode("zzz", 1).apply(db)

    def test_complex_with_children_cannot_become_atomic(self, db):
        op = UpdNode("a", 5)
        assert not op.is_valid(db)
        with pytest.raises(InvalidChangeError):
            op.apply(db)

    def test_complex_with_children_can_stay_complex(self, db):
        assert UpdNode("a", COMPLEX).is_valid(db)

    def test_inverse_restores(self, db):
        op = UpdNode("x", 99)
        inverse = op.inverse(db)
        op.apply(db)
        inverse.apply(db)
        assert db.value("x") == 1

    def test_str(self):
        assert str(UpdNode("n1", 20)) == "updNode(n1, 20)"


class TestAddArc:
    def test_valid_and_apply(self, db):
        db.create_node("y", 2)
        op = AddArc("a", "val", "y")
        assert op.is_valid(db)
        op.apply(db)
        assert db.has_arc("a", "val", "y")

    def test_atomic_parent_invalid(self, db):
        assert not AddArc("x", "l", "a").is_valid(db)

    def test_existing_arc_invalid(self, db):
        assert not AddArc("a", "val", "x").is_valid(db)

    def test_unknown_endpoints_invalid(self, db):
        assert not AddArc("a", "l", "zzz").is_valid(db)
        assert not AddArc("zzz", "l", "x").is_valid(db)

    def test_inverse(self, db):
        db.create_node("y", 2)
        op = AddArc("a", "val", "y")
        op.apply(db)
        op.inverse(db).apply(db)
        assert not db.has_arc("a", "val", "y")

    def test_str(self):
        assert str(AddArc("n4", "restaurant", "n2")) == \
            "addArc(n4, 'restaurant', n2)"


class TestRemArc:
    def test_valid_and_apply(self, db):
        op = RemArc("a", "val", "x")
        assert op.is_valid(db)
        op.apply(db)
        assert not db.has_arc("a", "val", "x")

    def test_missing_arc_invalid(self, db):
        assert not RemArc("r", "nope", "a").is_valid(db)
        with pytest.raises(InvalidChangeError):
            RemArc("r", "nope", "a").apply(db)

    def test_inverse(self, db):
        op = RemArc("a", "val", "x")
        op.apply(db)
        op.inverse(db).apply(db)
        assert db.has_arc("a", "val", "x")

    def test_ops_are_hashable_and_frozen(self):
        ops = {RemArc("a", "l", "b"), RemArc("a", "l", "b")}
        assert len(ops) == 1
        with pytest.raises(Exception):
            RemArc("a", "l", "b").label = "m"  # type: ignore[misc]


class TestExample22:
    """The modification sequence of Example 2.2, operation by operation."""

    def test_full_sequence(self, guide_db):
        # 1Jan97: price update + Hakata creation
        UpdNode("n1", 20).apply(guide_db)
        CreNode("n2", COMPLEX).apply(guide_db)
        CreNode("n3", "Hakata").apply(guide_db)
        AddArc("guide", "restaurant", "n2").apply(guide_db)
        AddArc("n2", "name", "n3").apply(guide_db)
        # 5Jan97: the comment
        CreNode("n5", "need info").apply(guide_db)
        AddArc("n2", "comment", "n5").apply(guide_db)
        # 8Jan97: parking removed
        RemArc("r2", "parking", "n7").apply(guide_db)

        assert guide_db.value("n1") == 20
        assert guide_db.has_arc("guide", "restaurant", "n2")
        assert not guide_db.has_arc("r2", "parking", "n7")
        # n7 is still reachable through Bangkok Cuisine's parking arc.
        guide_db.check()
