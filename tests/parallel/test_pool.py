"""WorkerPool behaviour: ordering, accounting, shutdown under load."""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel import WorkerPool, chunk_evenly, default_pool, shard_count


class TestMapOrdered:
    def test_results_in_submission_order(self):
        with WorkerPool(4) as pool:
            # Reverse sleep times so later submissions finish first.
            out = pool.map_ordered(
                lambda pair: (time.sleep(pair[1]), pair[0])[1],
                [(i, 0.02 * (4 - i)) for i in range(5)])
        assert out == [0, 1, 2, 3, 4]

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError(x)

        with WorkerPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map_ordered(boom, [1])
            assert pool.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_empty_input(self):
        with WorkerPool(2) as pool:
            assert pool.map_ordered(lambda x: x, []) == []


class TestAccounting:
    def test_counters_and_utilization(self):
        barrier = threading.Barrier(3)
        with WorkerPool(3, metrics_prefix="test.pool.a") as pool:
            pool.map_ordered(lambda _: barrier.wait(timeout=5), range(3))
            stats = pool.stats()
        assert stats["test.pool.a.submitted"] == 3
        assert stats["test.pool.a.completed"] == 3
        assert stats["test.pool.a.errors"] == 0
        # The barrier forces all three tasks to overlap.
        assert pool.peak_active == 3
        assert pool.utilization == 1.0
        assert stats["test.pool.a.task_seconds"]["count"] == 3

    def test_errors_counted(self):
        with WorkerPool(2, metrics_prefix="test.pool.b") as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()
            stats = pool.stats()
        assert stats["test.pool.b.errors"] == 1
        assert stats["test.pool.b.completed"] == 0

    def test_active_returns_to_zero(self):
        with WorkerPool(2) as pool:
            pool.map_ordered(lambda x: x, range(8))
            assert pool.active == 0


class TestShutdown:
    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: 1)

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown(cancel_pending=True)

    def test_shutdown_under_load_cancels_queue(self):
        """Queued-but-unstarted work is cancelled, counted, and the
        shutdown returns promptly instead of draining the backlog."""
        release = threading.Event()
        pool = WorkerPool(1, metrics_prefix="test.pool.c")
        try:
            # One worker: the blocker occupies it, the backlog queues.
            blocker = pool.submit(release.wait, 10)
            backlog = [pool.submit(lambda: "ran") for _ in range(5)]
            pool.shutdown(wait=False, cancel_pending=True)
            release.set()
            assert blocker.result(timeout=5) is True
            assert all(future.cancelled() for future in backlog)
            assert pool.stats()["test.pool.c.cancelled"] >= 5
            with pytest.raises(RuntimeError):
                pool.submit(lambda: 1)
        finally:
            release.set()
            pool.shutdown(wait=False, cancel_pending=True)

    def test_shutdown_waits_for_running_task(self):
        results = []
        with WorkerPool(1) as pool:
            pool.submit(lambda: (time.sleep(0.05), results.append("done")))
        # The context manager shutdown(wait=True) joins the worker.
        assert results == ["done"]


class TestDefaults:
    def test_default_pool_is_shared_and_recreated(self):
        first = default_pool()
        assert default_pool() is first
        first.shutdown()
        second = default_pool()
        assert second is not first
        assert second.map_ordered(lambda x: x * 2, [1, 2]) == [2, 4]

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestSharding:
    def test_chunks_concatenate_to_input(self):
        for n in range(0, 30):
            items = list(range(n))
            for shards in range(1, 9):
                chunks = chunk_evenly(items, shards)
                assert [x for chunk in chunks for x in chunk] == items
                assert all(chunks), (n, shards)
                if chunks:
                    sizes = sorted(len(c) for c in chunks)
                    assert sizes[-1] - sizes[0] <= 1

    def test_shard_count_bounds(self):
        assert shard_count(0, 4) == 0
        assert shard_count(10, 4) == 4
        assert shard_count(3, 8) == 3
        assert shard_count(100, 4, min_shard_size=50) == 2
        assert shard_count(10, 4, min_shard_size=100) == 1
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)
