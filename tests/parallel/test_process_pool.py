"""WorkerPool process mode: ordering, crashes, shutdown, thread parity.

Process pools ship picklable callables to forked workers, so the helpers
here are module-level functions.  The parity class runs the same
behavioural contract against both pool kinds -- the guarantee callers
rely on when flipping ``kind`` (or ``ParallelExecutor(processes=True)``)
for CPU-bound shards.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.obs.events import configure_events, disable_events
from repro.obs.metrics import registry as metrics_registry
from repro.parallel import WorkerPool, worker_evaluator
from repro.parallel.pool import _install_worker_evaluator


def square(x):
    return x * x


def sleepy_first(pair):
    """Sleep ``pair[1]`` seconds, return ``pair[0]``."""
    time.sleep(pair[1])
    return pair[0]


def boom(x):
    raise ValueError(x)


def hard_crash(_):
    os._exit(13)  # simulates a segfaulting / OOM-killed worker


def installed_evaluator_marker(_):
    return worker_evaluator()


@pytest.fixture(params=["thread", "process"])
def kind(request):
    return request.param


class TestKindParity:
    """The WorkerPool contract holds for both executor kinds."""

    def test_map_ordered_returns_submission_order(self, kind):
        with WorkerPool(2, kind=kind) as pool:
            # Reverse sleep times so later submissions finish first.
            out = pool.map_ordered(sleepy_first,
                                   [(i, 0.05 * (3 - i)) for i in range(4)])
        assert out == [0, 1, 2, 3]

    def test_map_ordered_empty(self, kind):
        with WorkerPool(2, kind=kind) as pool:
            assert pool.map_ordered(square, []) == []

    def test_exception_propagates_and_pool_survives(self, kind):
        with WorkerPool(2, kind=kind) as pool:
            with pytest.raises(ValueError):
                pool.map_ordered(boom, [1])
            # An ordinary exception must not poison the pool.
            assert pool.map_ordered(square, [2, 3]) == [4, 9]

    def test_submit_after_shutdown_rejected(self, kind):
        pool = WorkerPool(1, kind=kind)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(square, 2)

    def test_shutdown_is_idempotent(self, kind):
        pool = WorkerPool(1, kind=kind)
        pool.shutdown()
        pool.shutdown(cancel_pending=True)

    def test_accounting(self, kind):
        prefix = f"test.ppool.{kind}"
        with WorkerPool(2, kind=kind, metrics_prefix=prefix) as pool:
            assert pool.map_ordered(square, [1, 2, 3]) == [1, 4, 9]
            with pytest.raises(ValueError):
                pool.submit(boom, 0).result()
            stats = pool.stats()
        assert stats[f"{prefix}.submitted"] == 4
        assert stats[f"{prefix}.completed"] == 3
        assert stats[f"{prefix}.errors"] == 1
        assert stats[f"{prefix}.task_seconds"]["count"] == 4
        assert pool.active == 0

    def test_initializer_runs_in_workers(self, kind):
        sentinel = {"tag": "shard-evaluator"}
        with WorkerPool(2, kind=kind,
                        initializer=_install_worker_evaluator,
                        initargs=(sentinel,)) as pool:
            out = pool.map_ordered(installed_evaluator_marker, range(3))
        assert out == [sentinel] * 3


class TestProcessCrash:
    """A dying worker breaks loudly, never hangs or fabricates results."""

    def test_crash_surfaces_broken_executor(self):
        prefix = "test.ppool.crash"
        pool = WorkerPool(1, kind="process", metrics_prefix=prefix)
        try:
            future = pool.submit(hard_crash, None)
            with pytest.raises(BrokenExecutor):
                future.result(timeout=30)
            # The executor is broken for good: new work is refused.
            with pytest.raises((BrokenExecutor, RuntimeError)):
                pool.submit(square, 1).result(timeout=30)
            assert pool.stats()[f"{prefix}.errors"] >= 1
        finally:
            pool.shutdown(wait=False, cancel_pending=True)


class TestCrashTelemetry:
    """A dead worker ships no telemetry -- and corrupts none either."""

    def test_crash_emits_worker_crash_event(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        configure_events(events_path, level="error")
        pool = WorkerPool(1, kind="process",
                          metrics_prefix="test.ppool.crashlog")
        try:
            with pytest.raises(BrokenExecutor):
                pool.submit(hard_crash, None).result(timeout=30)
        finally:
            pool.shutdown(wait=False, cancel_pending=True)
            disable_events()
        crashes = [json.loads(line) for line
                   in events_path.read_text(encoding="utf-8").splitlines()
                   if json.loads(line)["type"] == "worker_crash"]
        assert crashes, "no worker_crash event reached the sink"
        assert crashes[0]["level"] == "error"
        assert crashes[0]["pool"] == "test.ppool.crashlog"
        assert crashes[0]["error"] == "BrokenProcessPool"

    def test_crash_leaves_parent_registry_uncorrupted(self):
        """The crashed shard's telemetry payload never arrives; the
        parent's planner/evaluator counters must not move at all."""
        registry = metrics_registry()
        pool = WorkerPool(1, kind="process",
                          metrics_prefix="test.ppool.crashreg")
        baseline = registry.typed_snapshot()
        try:
            with pytest.raises(BrokenExecutor):
                pool.submit(hard_crash, None).result(timeout=30)
        finally:
            pool.shutdown(wait=False, cancel_pending=True)
        delta = registry.delta_since(baseline)
        moved = {name for name in delta["counters"]
                 if not name.startswith(("test.ppool.crashreg.",
                                         "repro.events."))}
        assert moved == set(), \
            f"crash leaked foreign counter increments: {sorted(moved)}"
        assert delta["counters"]["test.ppool.crashreg.errors"] >= 1
        foreign_histograms = {name for name in delta["histograms"]
                              if not name.startswith("test.ppool.crashreg.")}
        assert foreign_histograms == set()


class TestProcessShutdownUnderLoad:
    def test_cancel_pending_under_load(self):
        """Queued-but-unstarted shard tasks are cancelled and counted;
        shutdown returns instead of draining the backlog."""
        prefix = "test.ppool.load"
        pool = WorkerPool(1, kind="process", metrics_prefix=prefix)
        try:
            blocker = pool.submit(sleepy_first, ("done", 1.5))
            backlog = [pool.submit(square, n) for n in range(6)]
            pool.shutdown(wait=False, cancel_pending=True)
            # The running task finishes; most of the backlog never runs
            # (the executor may have prefetched one item into its call
            # queue before the cancellation).
            assert blocker.result(timeout=30) == "done"
            cancelled = sum(1 for f in backlog if f.cancelled())
            assert cancelled >= len(backlog) - 1
            assert pool.stats()[f"{prefix}.cancelled"] >= cancelled
            with pytest.raises(RuntimeError):
                pool.submit(square, 1)
        finally:
            pool.shutdown(wait=False, cancel_pending=True)


class TestWorkerEvaluator:
    def test_unset_worker_evaluator_raises(self):
        import repro.parallel.pool as pool_module
        saved = pool_module._WORKER_EVALUATOR
        pool_module._WORKER_EVALUATOR = None
        try:
            with pytest.raises(RuntimeError):
                worker_evaluator()
        finally:
            pool_module._WORKER_EVALUATOR = saved
