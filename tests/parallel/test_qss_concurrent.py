"""Concurrent QSS polling: isolation, timeouts, and serial equivalence.

The acceptance bar from the issue: a subscription whose source hangs (or
crashes) must not stall the polling cycle -- the timeout fires, the
failure lands in ``error_log``, and every other subscription is notified
on schedule.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    COMPLEX,
    FrequencySpec,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.qss.server import PollTimeout
from repro.timestamps import Timestamp


class ScriptedSource:
    """A tiny source whose membership changes on a scripted date."""

    def __init__(self, flip_day: str = "5Dec96"):
        self.now: Timestamp | None = None
        self.flip = parse_timestamp(flip_day)

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        names = ["alpha", "beta"]
        if self.now is not None and self.now >= self.flip:
            names.append("gamma")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "item", node)
            value = db.create_node(f"v{index}", name)
            db.add_arc(node, "name", value)
        return db


class CrashingSource(ScriptedSource):
    """Raises on every export after ``crash_day`` -- a flaky upstream."""

    def __init__(self, crash_day: str = "3Dec96"):
        super().__init__()
        self.crash = parse_timestamp(crash_day)

    def export(self):
        if self.now is not None and self.now >= self.crash:
            raise ConnectionError("source fell over")
        return super().export()


class HangingSource(ScriptedSource):
    """Blocks in export() until ``release`` is set -- a hung upstream."""

    def __init__(self, release: threading.Event, hang_day: str = "3Dec96"):
        super().__init__()
        self.release = release
        self.hang = parse_timestamp(hang_day)

    def export(self):
        if self.now is not None and self.now >= self.hang:
            self.release.wait()
        return super().export()


def subscription(name: str) -> Subscription:
    return Subscription(
        name=name, polling_name=name,
        polling_query="select guide.item",
        frequency=FrequencySpec.parse("every 1 day"),
        filter_query=f"select {name}.item<cre at T> where T > t[-1]")


def build_server(sources: dict[str, object], max_workers: int = 1,
                 **kw) -> QSSServer:
    server = QSSServer(start="1Dec96", deliver_empty=True,
                       max_poll_workers=max_workers, **kw)
    for name, source in sources.items():
        server.register_wrapper(name, Wrapper(source, name="guide"))
        server.subscribe(subscription(name), name)
    return server


def signature(notifications):
    return [(n.subscription, str(n.polling_time), n.poll_index,
             sorted(map(str, n.result))) for n in notifications]


class TestEquivalence:
    def test_concurrent_polling_matches_serial(self):
        serial = build_server({f"s{i}": ScriptedSource() for i in range(5)})
        with build_server({f"s{i}": ScriptedSource() for i in range(5)},
                          max_workers=4) as concurrent:
            expected = signature(serial.run_until("9Dec96"))
            actual = signature(concurrent.run_until("9Dec96"))
        assert actual == expected
        assert len(expected) == 5 * 8  # 5 subscriptions, 8 daily polls

    def test_shared_wrapper_batch(self):
        """Several subscriptions on one wrapper poll it concurrently."""

        def build(workers):
            server = QSSServer(start="1Dec96", deliver_empty=True,
                               max_poll_workers=workers)
            server.register_wrapper("src", Wrapper(ScriptedSource(),
                                                   name="guide"))
            for i in range(4):
                server.subscribe(subscription(f"sub{i}"), "src")
            return server

        with build(3) as concurrent:
            assert signature(concurrent.run_until("8Dec96")) == \
                signature(build(1).run_until("8Dec96"))


class TestCrashIsolation:
    def test_crashing_subscription_does_not_stall_others(self):
        sources = {"bad": CrashingSource(), "good1": ScriptedSource(),
                   "good2": ScriptedSource()}
        with build_server(sources, max_workers=3,
                          on_error="skip") as server:
            server.run_until("8Dec96")
            healthy = {n.subscription for n in server.notification_log}
            assert {"good1", "good2"} <= healthy
            # The healthy pair kept their full daily cadence.
            good1 = [n for n in server.notification_log
                     if n.subscription == "good1"]
            assert len(good1) == 7
            crashes = [entry for entry in server.error_log
                       if entry[1] == "bad"]
            assert crashes and all(isinstance(entry[2], ConnectionError)
                                   for entry in crashes)
            # The crashing subscription's schedule kept advancing too.
            assert len(crashes) == 6  # daily crashes from 3Dec96 onward

    def test_crash_raises_without_skip(self):
        sources = {"bad": CrashingSource(), "good": ScriptedSource()}
        with build_server(sources, max_workers=2) as server:
            with pytest.raises(ConnectionError):
                server.run_until("8Dec96")


class TestHungSubscriptionTimeout:
    def test_timeout_fires_and_others_are_notified(self):
        release = threading.Event()
        try:
            sources = {"hung": HangingSource(release),
                       "good1": ScriptedSource(), "good2": ScriptedSource()}
            with build_server(sources, max_workers=3, poll_timeout=0.5,
                              on_error="raise") as server:
                notifications = server.run_until("6Dec96")
                # Healthy subscriptions completed every daily poll.
                for name in ("good1", "good2"):
                    assert sum(1 for n in notifications
                               if n.subscription == name) == 5
                # The hung subscription delivered before it hung (2Dec),
                # then timed out at 3Dec and was skipped 4-6Dec while its
                # zombie poll lingered -- never raising, even with
                # on_error="raise".
                hung = [n for n in notifications if n.subscription == "hung"]
                assert len(hung) == 1
                timeouts = [entry for entry in server.error_log
                            if entry[1] == "hung"]
                assert len(timeouts) == 4
                assert all(isinstance(entry[2], PollTimeout)
                           for entry in timeouts)
                # The schedule kept advancing through the outage.
                hung_state = server.subscriptions.get("hung")
                assert hung_state.poll_count == 5
                pool_stats = server.poll_pool.stats()
                assert pool_stats["qss.pool.submitted"] > 0
        finally:
            release.set()  # let the zombie worker exit before teardown

    def test_timeout_requires_concurrency(self):
        from repro.errors import QSSError
        with pytest.raises(QSSError):
            QSSServer(poll_timeout=1.0)
        with pytest.raises(QSSError):
            QSSServer(max_poll_workers=2, poll_timeout=0.0)
        with pytest.raises(QSSError):
            QSSServer(max_poll_workers=0)

    def test_timeouts_counted_in_metrics(self):
        from repro import metrics_registry
        release = threading.Event()
        try:
            before = metrics_registry().snapshot("qss").get("qss.timeouts", 0)
            with build_server({"hung": HangingSource(release)},
                              max_workers=2, poll_timeout=0.2) as server:
                server.run_until("4Dec96")
                after = metrics_registry().snapshot("qss")["qss.timeouts"]
            assert after > before
        finally:
            release.set()
