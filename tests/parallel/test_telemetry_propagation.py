"""Cross-process telemetry: sharded counter totals equal serial totals.

Forked pool workers mutate *their own* process-global registry; the
Exchange operator ships each shard's registry delta (and span subtree)
back with its rows and merges them into the coordinator.  The observable
contract tested here: after a process-sharded run, the coordinator's
``repro.plan.*`` and ``repro.view.*`` counter totals are exactly what a
serial run of the same query would have produced -- telemetry is neither
lost in the workers nor double-counted by the merge.

Histograms are excluded from the equality: sharding legitimately changes
*observation counts* (each shard emits its own batches), which is why
counters -- not distributions -- carry the equivalence guarantee.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import ChorelEngine, ParallelExecutor
from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import get_tracer
from tests.test_differential_index import make_world, world_queries

COUNTER_FAMILIES = ("repro.plan.", "repro.view.")


def family_counters(delta: dict) -> dict[str, int]:
    """The planner/evaluator counters from a registry delta."""
    return {name: value for name, value in delta["counters"].items()
            if name.startswith(COUNTER_FAMILIES)}


def counters_during(fn) -> dict[str, int]:
    registry = metrics_registry()
    baseline = registry.typed_snapshot()
    fn()
    return family_counters(registry.delta_since(baseline))


@pytest.fixture(scope="module")
def worlds():
    built = {}
    for seed in (0, 5, 11):
        _, history, doem = make_world(seed)
        built[seed] = (doem, world_queries(history))
    return built


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_process_sharded_counters_equal_serial(worlds, data):
    """The ISSUE acceptance property, drawn over worlds and queries."""
    seed = data.draw(st.sampled_from(sorted(worlds)), label="world")
    doem, queries = worlds[seed]
    query = data.draw(st.sampled_from(queries), label="query")

    # Fresh engine per posture: both start from identical cold caches, so
    # any counter difference is a propagation bug, not cache warmth.
    serial_engine = ChorelEngine(doem, name="root")
    serial_rows: list = []
    serial = counters_during(
        lambda: serial_rows.extend(map(str, serial_engine.run(query))))

    sharded_engine = ChorelEngine(doem, name="root")
    sharded_rows: list = []
    with ParallelExecutor(sharded_engine, processes=True,
                          max_workers=2) as executor:
        sharded = counters_during(
            lambda: sharded_rows.extend(map(str, executor.run(query))))

    assert sharded_rows == serial_rows
    assert sharded == serial


def test_multi_shard_dispatch_still_matches():
    """Deterministic variant that provably fans out (shards > 1)."""
    _, history, doem = make_world(9)
    queries = world_queries(history)

    serial_engine = ChorelEngine(doem, name="root")
    serial = counters_during(
        lambda: [serial_engine.run(query) for query in queries])

    registry = metrics_registry()
    sharded_engine = ChorelEngine(doem, name="root")
    before_sharded = registry.snapshot().get(
        "repro.parallel.sharded_queries", 0)
    with ParallelExecutor(sharded_engine, processes=True,
                          max_workers=2) as executor:
        sharded = counters_during(
            lambda: [executor.run(query) for query in queries])
    after_sharded = registry.snapshot().get(
        "repro.parallel.sharded_queries", 0)

    assert after_sharded > before_sharded, \
        "workload never fanned out; the property was not exercised"
    assert sharded == serial
    assert any(sharded.values()), "no planner/evaluator counters moved"


def test_worker_spans_reparent_under_fanout():
    """Shard span subtrees come back and nest under ``parallel.fanout``."""
    _, history, doem = make_world(9)
    engine = ChorelEngine(doem, name="root")
    tracer = get_tracer()
    fanout = None
    with ParallelExecutor(engine, processes=True, max_workers=2) as executor:
        # Not every template binds enough rows to shard; take the first
        # query that actually fans out.
        for query in world_queries(history):
            with tracer.capture() as cap:
                executor.run(query)
            fanout = cap.find("parallel.fanout")
            if fanout is not None and fanout.attrs.get("shards", 0) > 1:
                break
    assert fanout is not None, "no query in the workload fanned out"
    shard_children = [child for child in fanout.children
                      if child.name == "parallel.shard"]
    assert len(shard_children) == fanout.attrs["shards"]
    for child in shard_children:
        assert child.duration >= 0
        assert "rows" in child.attrs


def test_thread_pool_spans_nest_under_submitting_span():
    """WorkerPool thread tasks attach to the submitter's active span
    instead of becoming orphaned roots (satellite 1)."""
    from repro.parallel import WorkerPool

    tracer = get_tracer()
    with WorkerPool(2, kind="thread") as pool:
        with tracer.capture() as cap:
            with tracer.span("parent.batch"):
                futures = [pool.submit(_traced_task, n) for n in range(3)]
                assert sorted(f.result() for f in futures) == [0, 1, 4]
    parent = cap.find("parent.batch")
    assert parent is not None
    assert sorted(c.name for c in parent.children) == \
        ["task.0", "task.1", "task.2"]
    assert not any(root.name.startswith("task.") for root in cap.spans)


def _traced_task(n):
    from repro.obs.trace import span

    with span(f"task.{n}"):
        return n * n
