"""The tentpole property: parallel evaluation == serial evaluation.

Randomized worlds (random OEM database + random valid history), the
differential harness's query templates, and every pool width from 1 to 4:
``ParallelExecutor.run`` and ``engine.run_many`` must return rows
*identical and identically ordered* to the serial engine.  Exact-order
equality (not set equality) is the point -- the deterministic merge is
what makes the parallel layer safe to substitute anywhere.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import ChorelEngine, IndexedChorelEngine, ParallelExecutor
from tests.test_differential_index import make_world, world_queries

POOL_SIZES = (1, 2, 3, 4)


def exact_rows(result) -> list[str]:
    """Order-preserving row signature (sorted() would hide merge bugs)."""
    return [str(row) for row in result]


@pytest.fixture(scope="module")
def worlds():
    """A few prebuilt worlds; building them per example would dominate."""
    built = {}
    for seed in (0, 5, 11, 17):
        _, history, doem = make_world(seed)
        built[seed] = (ChorelEngine(doem, name="root"),
                       IndexedChorelEngine(doem, name="root"),
                       world_queries(history))
    return built


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_sharded_run_matches_serial(worlds, data):
    seed = data.draw(st.sampled_from(sorted(worlds)), label="world")
    naive, indexed, queries = worlds[seed]
    query = data.draw(st.sampled_from(queries), label="query")
    workers = data.draw(st.sampled_from(POOL_SIZES), label="workers")
    engine = data.draw(st.sampled_from([naive, indexed]), label="engine")
    serial = exact_rows(engine.run(query))
    with ParallelExecutor(engine, max_workers=workers) as executor:
        assert exact_rows(executor.run(query)) == serial


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_run_many_matches_sequential(worlds, data):
    seed = data.draw(st.sampled_from(sorted(worlds)), label="world")
    naive, indexed, queries = worlds[seed]
    batch = data.draw(
        st.lists(st.sampled_from(queries), min_size=0, max_size=8),
        label="batch")
    workers = data.draw(st.sampled_from(POOL_SIZES), label="workers")
    engine = data.draw(st.sampled_from([naive, indexed]), label="engine")
    sequential = [exact_rows(engine.run(query)) for query in batch]
    parallel = engine.run_many(batch, max_workers=workers)
    assert [exact_rows(result) for result in parallel] == sequential


class TestEndToEnd:
    """Deterministic (non-hypothesis) sweeps for the CI bench baseline."""

    @pytest.mark.parametrize("seed", range(8))
    def test_every_template_every_width(self, seed):
        _, history, doem = make_world(seed)
        engine = ChorelEngine(doem, name="root")
        queries = world_queries(history)
        serial = [exact_rows(engine.run(query)) for query in queries]
        for workers in POOL_SIZES:
            with ParallelExecutor(engine, max_workers=workers) as executor:
                assert [exact_rows(executor.run(query))
                        for query in queries] == serial, (seed, workers)

    def test_indexed_pushdown_still_taken(self):
        """Plan-eligible queries keep going through the annotation index."""
        _, history, doem = make_world(3)
        engine = IndexedChorelEngine(doem, name="root")
        engine.reset_stats()
        with ParallelExecutor(engine, max_workers=2) as executor:
            for query in world_queries(history):
                executor.run(query)
        assert engine.stats.indexed_queries > 0
        assert engine.stats.fallback_queries > 0

    def test_run_many_counts_pushdown_like_serial(self):
        _, history, doem = make_world(7)
        queries = world_queries(history)
        serial_engine = IndexedChorelEngine(doem, name="root")
        for query in queries:
            serial_engine.run(query)
        batch_engine = IndexedChorelEngine(doem, name="root")
        batch_engine.run_many(queries, max_workers=3)
        assert batch_engine.stats.indexed_queries == \
            serial_engine.stats.indexed_queries
        assert batch_engine.stats.fallback_queries == \
            serial_engine.stats.fallback_queries

    def test_shared_pool_reused_across_executors(self):
        from repro.parallel import WorkerPool
        _, history, doem = make_world(2)
        engine = ChorelEngine(doem, name="root")
        queries = world_queries(history)
        with WorkerPool(3, metrics_prefix="test.shared") as pool:
            first = ParallelExecutor(engine, pool=pool)
            second = ParallelExecutor(engine, pool=pool)
            for query in queries:
                assert exact_rows(first.run(query)) == \
                    exact_rows(second.run(query))
            assert pool.stats()["test.shared.submitted"] > 0
