"""Tests for label, value, and annotation indexes."""

import pytest

from repro import (
    AnnotationIndex,
    LabelIndex,
    NEG_INF,
    POS_INF,
    ValueIndex,
    parse_timestamp,
)
from repro.oem.model import Arc


class TestLabelIndex:
    def test_arcs_by_label(self, guide_db):
        index = LabelIndex(guide_db)
        assert index.count("restaurant") == 2
        assert index.count("nope") == 0
        assert {arc.target for arc in index.arcs("restaurant")} == \
            {"r1", "r2"}

    def test_parents_of_label(self, guide_db):
        index = LabelIndex(guide_db)
        assert index.parents_of_label("name") == {"r1", "r2"}

    def test_labels_sorted(self, guide_db):
        labels = LabelIndex(guide_db).labels()
        assert labels == sorted(labels)
        assert "parking" in labels

    def test_rebuild_reflects_changes(self, guide_db):
        index = LabelIndex(guide_db)
        guide_db.remove_arc("r2", "parking", "n7")
        index.rebuild(guide_db)
        assert index.count("parking") == 1


class TestValueIndex:
    def test_exact_lookup(self, guide_db):
        index = ValueIndex(guide_db)
        assert index.lookup(10) == ["n1"]
        assert index.lookup("Janta") == ["nm2"]
        assert index.lookup("missing") == []

    def test_partitions_separate(self, guide_db):
        index = ValueIndex(guide_db)
        # string "10" must not hit the integer 10
        assert index.lookup("10") == []

    def test_range_scan_numbers(self):
        from repro import OEMDatabase
        db = OEMDatabase(root="r")
        for index, value in enumerate([5, 10, 15, 20, 25]):
            db.create_node(f"v{index}", value)
            db.add_arc("r", "v", f"v{index}")
        vindex = ValueIndex(db)
        assert vindex.range_scan(10, 20) == ["v1", "v2", "v3"]
        assert vindex.range_scan(10, 20, include_low=False) == ["v2", "v3"]
        assert vindex.range_scan(None, 10) == ["v0", "v1"]
        assert vindex.range_scan(21, None) == ["v4"]

    def test_range_scan_timestamps(self):
        from repro import OEMDatabase
        db = OEMDatabase(root="r")
        for index, text in enumerate(["1Jan97", "5Jan97", "8Jan97"]):
            db.create_node(f"t{index}", parse_timestamp(text))
            db.add_arc("r", "t", f"t{index}")
        vindex = ValueIndex(db)
        hits = vindex.range_scan(parse_timestamp("2Jan97"),
                                 parse_timestamp("9Jan97"))
        assert hits == ["t1", "t2"]

    def test_range_scan_requires_bound(self, guide_db):
        with pytest.raises(ValueError):
            ValueIndex(guide_db).range_scan(None, None)


class TestAnnotationIndex:
    def test_counts(self, guide_doem):
        index = AnnotationIndex(guide_doem)
        assert index.count("cre") == 3
        assert index.count("upd") == 1
        assert index.count("add") == 3
        assert index.count("rem") == 1

    def test_between_interval(self, guide_doem):
        index = AnnotationIndex(guide_doem)
        hits = index.between("cre", parse_timestamp("2Jan97"),
                             parse_timestamp("9Jan97"))
        assert [(when, node) for when, node in hits] == \
            [(parse_timestamp("5Jan97"), "n5")]

    def test_between_default_bounds(self, guide_doem):
        index = AnnotationIndex(guide_doem)
        assert len(index.between("add")) == 3
        assert len(index.between("add", NEG_INF, POS_INF)) == 3

    def test_qss_predicate_shape(self, guide_doem):
        # T > t[-1] and T <= t[0]: the (low, high] default.
        index = AnnotationIndex(guide_doem)
        low = parse_timestamp("1Jan97")  # exclusive by default
        hits = index.between("cre", low, parse_timestamp("5Jan97"))
        assert [node for _, node in hits] == ["n5"]

    def test_arc_subjects(self, guide_doem):
        index = AnnotationIndex(guide_doem)
        rem_hits = index.between("rem")
        assert rem_hits == [(parse_timestamp("8Jan97"),
                             Arc("r2", "parking", "n7"))]

    def test_created_since(self, guide_doem):
        index = AnnotationIndex(guide_doem)
        assert index.created_since(parse_timestamp("1Jan97")) == ["n5"]
        assert sorted(index.created_since(NEG_INF)) == ["n2", "n3", "n5"]

    def test_unknown_kind(self, guide_doem):
        with pytest.raises(KeyError):
            AnnotationIndex(guide_doem).between("nope")

    def test_index_agrees_with_engine_scan(self, guide_doem):
        """The index answers the same question a Chorel scan answers."""
        from repro import ChorelEngine
        engine = ChorelEngine(guide_doem, name="guide")
        scan = engine.run("select T from guide.#.comment<cre at T>")
        index = AnnotationIndex(guide_doem)
        hits = index.between("cre", parse_timestamp("4Jan97"),
                             parse_timestamp("6Jan97"))
        assert [when for when, _ in hits] == \
            [row.scalar() for row in scan]
