"""Tests for the Lore store (named databases + file persistence)."""

import pytest

from repro import DOEMDatabase, LoreStore
from repro.errors import SerializationError


class TestInMemory:
    def test_put_get_oem(self, guide_db):
        store = LoreStore()
        store.put_oem("guide", guide_db)
        assert store.get_oem("guide") is guide_db

    def test_put_get_doem(self, guide_doem):
        store = LoreStore()
        store.put_doem("history", guide_doem)
        assert store.get_doem("history") is guide_doem

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            LoreStore().get_oem("nope")

    def test_names(self, guide_db, guide_doem):
        store = LoreStore()
        store.put_oem("a", guide_db)
        store.put_doem("b", guide_doem)
        assert store.names() == ["a", "b"]
        assert "a" in store and "zzz" not in store

    def test_delete(self, guide_db):
        store = LoreStore()
        store.put_oem("a", guide_db)
        store.delete("a")
        assert store.names() == []

    def test_illegal_names(self, guide_db):
        store = LoreStore()
        for bad in ["", "a/b", "a b", "dot.ted"]:
            with pytest.raises(SerializationError):
                store.put_oem(bad, guide_db)


class TestDurable:
    def test_oem_survives_reload(self, guide_db, tmp_path):
        LoreStore(tmp_path).put_oem("guide", guide_db)
        fresh = LoreStore(tmp_path)
        assert fresh.get_oem("guide").same_as(guide_db)

    def test_doem_survives_reload_via_encoding(self, guide_doem, tmp_path):
        """DOEM persists through its Section 5.1 OEM encoding, exactly."""
        LoreStore(tmp_path).put_doem("history", guide_doem)
        fresh = LoreStore(tmp_path)
        restored = fresh.get_doem("history")
        assert restored.same_as(guide_doem)

    def test_names_from_disk(self, guide_db, guide_doem, tmp_path):
        store = LoreStore(tmp_path)
        store.put_oem("plain", guide_db)
        store.put_doem("annotated", guide_doem)
        assert LoreStore(tmp_path).names() == ["annotated", "plain"]

    def test_delete_removes_files(self, guide_doem, tmp_path):
        store = LoreStore(tmp_path)
        store.put_doem("d", guide_doem)
        store.delete("d")
        assert LoreStore(tmp_path).names() == []
        assert list(tmp_path.iterdir()) == []

    def test_random_doem_round_trips(self, tmp_path):
        from repro import build_doem, random_database, random_history
        db = random_database(seed=7, nodes=25)
        doem = build_doem(db, random_history(db, seed=7, steps=4))
        LoreStore(tmp_path).put_doem("rand", doem)
        assert LoreStore(tmp_path).get_doem("rand").same_as(doem)
