"""Cross-module integration scenarios.

Each test exercises a pipeline several modules long, the way a downstream
user would: evolving sources -> wrappers -> diff -> DOEM -> Chorel -> QSS,
plus persistence through the Lore store.
"""

import pytest

from repro import (
    COMPLEX,
    ChorelEngine,
    LibrarySource,
    LoreStore,
    OEMDatabase,
    QSC,
    QSSServer,
    RestaurantGuideSource,
    Subscription,
    TranslatingChorelEngine,
    Wrapper,
    build_doem,
    current_snapshot,
    oem_diff,
    parse_timestamp,
    plan_update,
)
from repro.doem.build import apply_change_set
from repro.qss.subscription import polling_time_mapping


class TestGuideEndToEnd:
    """Evolving guide -> QSS -> Chorel filters, over real differencing."""

    def _server(self, events_per_day=3.0, seed=1997):
        source = RestaurantGuideSource(seed=seed,
                                       events_per_day=events_per_day)
        server = QSSServer(start="1Dec96", deliver_empty=True)
        server.register_wrapper("guide", Wrapper(source, name="guide"))
        return server, source

    def test_new_restaurant_subscription(self):
        server, source = self._server()
        client = QSC(server)
        client.subscribe(
            name="AllRestaurants", frequency="every day at 11:30pm",
            polling_query="define polling query AllRestaurants as "
                          "select guide.restaurant",
            filter_query="define filter query New as "
                         "select AllRestaurants.restaurant<cre at T> "
                         "where T > t[-1]",
            wrapper="guide")
        server.run_until("8Dec96")
        assert client.inbox, "a week of evolution must produce polls"
        # First poll reports every restaurant as created.
        assert len(client.inbox[0].result) >= 5
        # Later polls report only genuinely new entries: cross-check the
        # source's own event log.
        opened = sum(1 for _, event in source.event_log
                     if event.startswith("open"))
        later_creations = sum(len(n.result) for n in client.inbox[1:])
        assert later_creations <= opened + 2  # diff may split a rename

    def test_price_change_subscription(self):
        server, _ = self._server(events_per_day=6.0)
        client = QSC(server)
        client.subscribe(
            name="Prices", frequency="every day at 11:00pm",
            polling_query="select guide.restaurant",
            filter_query="select OV, NV from "
                         "Prices.restaurant.price<upd at T from OV to NV> "
                         "where T > t[-1]",
            wrapper="guide")
        server.run_until("14Dec96")
        changes = [row for notification in client.inbox
                   for row in notification.result]
        assert changes, "two weeks at 6 events/day must change some price"
        for row in changes:
            assert row["old-value"] != row["new-value"]

    def test_doem_history_accumulates(self):
        server, _ = self._server(events_per_day=4.0)
        subscription = Subscription(
            name="S", frequency="every day at 6:00pm",
            polling_query="select guide.restaurant",
            filter_query="select S.restaurant<cre at T> where T > t[-1]")
        server.subscribe(subscription, "guide")
        server.run_until("10Dec96")
        doem = server.doems.doem("S")
        assert len(doem.timestamps()) >= 5
        # The DOEM's current snapshot mirrors what the wrapper saw at the
        # last poll (re-polling at that same instant is a source no-op).
        state = server.subscriptions.get("S")
        fresh = server.queries.poll(state, state.polling_times[-1])
        assert current_snapshot(doem).isomorphic_to(fresh)


class TestLibraryScenario:
    """The Section 1.1 motivating example: popular books returning."""

    def test_popular_book_notification(self):
        source = LibrarySource(seed=3, books=6, events_per_day=8.0)
        server = QSSServer(start="1Dec96")
        server.register_wrapper("library", Wrapper(source, name="library"))
        subscription = Subscription(
            name="Books", frequency="every day at 7:00am",
            polling_query="select library.book",
            filter_query="select B, T from Books.book B, "
                         "B.status<upd at T from OV to NV> "
                         'where T > t[-1] and NV = "in" and OV = "out"')
        server.subscribe(subscription, "library")
        notifications = server.run_until("1Jan97")
        returned = [row for n in notifications for row in n.result]
        assert returned, "a month of circulation must return some book"

        # Popularity ("checked out twice in the past month") is answerable
        # from the DOEM history alone -- the legacy source never said so.
        doem = server.doems.doem("Books")
        engine = ChorelEngine(doem, name="Books")
        month_ago = server.clock.plus(days=-31)
        result = engine.run(
            f'select B, T from Books.book B, '
            f'B.status<upd at T from OV to NV> '
            f'where NV = "out" and T > {month_ago}')
        checkouts_by_book = {}
        for row in result:
            node = row["book"].node
            checkouts_by_book[node] = checkouts_by_book.get(node, 0) + 1
        assert any(count >= 2 for count in checkouts_by_book.values())


class TestManualPipeline:
    """Wrapper-free pipeline: diff + DOEM fold + both Chorel backends."""

    def test_three_snapshot_fold(self, guide_db, guide_history):
        snapshots = guide_history.replay(guide_db)
        times = guide_history.timestamps()
        from repro import DOEMDatabase
        doem = DOEMDatabase(snapshots[0].copy())
        reserved = set(snapshots[0].nodes())
        for when, (previous, current) in zip(
                times, zip(snapshots, snapshots[1:])):
            changes = oem_diff(current_snapshot(doem), current,
                               reserved_ids=reserved)
            apply_change_set(doem, when, changes)
            reserved.update(changes.created_nodes())
        # The folded DOEM answers the same Chorel queries as the directly
        # built one -- modulo node identity, so compare value-level facts.
        engine = ChorelEngine(doem, name="guide")
        added = engine.run("select N from guide.<add at T>restaurant R, "
                           "R.name N where T >= 1Jan97")
        values = [doem.graph.value(row.scalar().node) for row in added]
        assert values == ["Hakata"]
        removed = engine.run(
            "select R from guide.restaurant R where R.<rem at T>parking")
        assert len(removed) == 1

    def test_update_language_feeds_doem_and_chorel(self, figure3_db):
        from repro import DOEMDatabase
        doem = DOEMDatabase(figure3_db.copy())
        changes = plan_update(
            current_snapshot(doem),
            'update guide.restaurant.price := 35 '
            'where guide.restaurant.name = "Bangkok Cuisine"')
        apply_change_set(doem, "10Jan97", changes)
        for engine in (ChorelEngine(doem, name="guide"),
                       TranslatingChorelEngine(doem, name="guide")):
            result = engine.run(
                "select OV, NV from guide.restaurant.price"
                "<upd at T from OV to NV> where T = 10Jan97")
            row = result.first()
            assert (row["old-value"], row["new-value"]) == (20, 35)


class TestPersistenceAcrossRestart:
    """QSS state survives through the Lore store (DOEM via encoding)."""

    def test_store_and_requery(self, tmp_path, guide_doem):
        store = LoreStore(tmp_path)
        store.put_doem("Restaurants", guide_doem)

        # "restart": fresh store over the same directory
        restored = LoreStore(tmp_path).get_doem("Restaurants")
        engine = ChorelEngine(restored, name="guide")
        engine.set_polling_times(polling_time_mapping(
            [parse_timestamp("31Dec96"), parse_timestamp("6Jan97")]))
        result = engine.run("select Restaurants.restaurant"  # wrong name
                            if False else
                            "select guide.restaurant.comment<cre at T> "
                            "where T > t[-1]")
        assert len(result) == 1
