"""Calendar edge cases for frequency specifications."""

import pytest

from repro import FrequencySpec, parse_timestamp


class TestCalendarBoundaries:
    def test_daily_across_month_end(self):
        spec = FrequencySpec.parse("every day at 9:00am")
        assert spec.next_after(parse_timestamp("31Jan97 10:00am")) == \
            parse_timestamp("1Feb97 9:00am")

    def test_daily_across_year_end(self):
        spec = FrequencySpec.parse("every night at 11:30pm")
        assert spec.next_after(parse_timestamp("31Dec96 11:45pm")) == \
            parse_timestamp("1Jan97 11:30pm")

    def test_weekly_across_year_end(self):
        # 27Dec96 was a Friday.
        spec = FrequencySpec.parse("every friday at 5:00pm")
        assert spec.next_after(parse_timestamp("28Dec96")) == \
            parse_timestamp("3Jan97 5:00pm")

    def test_leap_year_february(self):
        spec = FrequencySpec.parse("every day at 9:00am")
        assert spec.next_after(parse_timestamp("28Feb96 10:00am")) == \
            parse_timestamp("29Feb96 9:00am")
        assert spec.next_after(parse_timestamp("28Feb97 10:00am")) == \
            parse_timestamp("1Mar97 9:00am")

    def test_interval_spans_are_exact(self):
        spec = FrequencySpec.parse("every 7 days")
        start = parse_timestamp("25Dec96")
        times = spec.polling_times(start, 3)
        assert [str(t) for t in times] == ["1Jan97", "8Jan97", "15Jan97"]

    def test_second_granularity(self):
        spec = FrequencySpec.parse("every 30 seconds")
        start = parse_timestamp("1Jan97")
        first = spec.next_after(start)
        assert first - start == 30

    def test_polling_sequence_strictly_increasing(self):
        for text in ("every 10 minutes", "every day at 9:00am",
                     "every monday at 5:00pm"):
            spec = FrequencySpec.parse(text)
            times = spec.polling_times(parse_timestamp("30Dec96"), 10)
            assert all(earlier < later
                       for earlier, later in zip(times, times[1:])), text
