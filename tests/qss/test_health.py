"""The QSS health surface: streaks, statuses, gauges, and events.

:meth:`QSSServer.health` is the contract behind the ``/health`` HTTP
endpoint and ``repro top``: per-subscription liveness derived from
consecutive timeout/error streaks, poll lag against the simulated
schedule, and the age of the last delivered notification.  These tests
drive real polling loops (hung and crashing sources from the concurrent
suite) and assert the full degradation ladder: healthy -> degraded (one
bad poll) -> unhealthy (three consecutive timeouts) -> healthy again on
recovery.
"""

from __future__ import annotations

import json
import threading

from repro import metrics_registry, parse_timestamp
from repro.obs.events import configure_events, disable_events
from tests.parallel.test_qss_concurrent import (
    HangingSource,
    ScriptedSource,
    build_server,
)


class RecoveringSource(ScriptedSource):
    """Fails exports between two dates, healthy before and after."""

    def __init__(self, first_bad: str = "3Dec96", last_bad: str = "4Dec96"):
        super().__init__()
        self.first_bad = parse_timestamp(first_bad)
        self.last_bad = parse_timestamp(last_bad)

    def export(self):
        if self.now is not None and self.first_bad <= self.now <= self.last_bad:
            raise ConnectionError("flaking")
        return super().export()


class TestHealthyServer:
    def test_payload_shape_and_status(self):
        server = build_server({"a": ScriptedSource(), "b": ScriptedSource()})
        server.run_until("4Dec96")
        health = server.health()
        assert health["status"] == "healthy"
        assert health["clock"] == str(server.clock)
        assert set(health["subscriptions"]) == {"a", "b"}
        for sub in health["subscriptions"].values():
            assert sub["status"] == "healthy"
            assert sub["consecutive_timeouts"] == 0
            assert sub["consecutive_errors"] == 0
            assert sub["poll_lag_seconds"] == 0.0
            assert sub["last_poll"] is not None
            assert sub["next_poll"] is not None
        assert health["polls"] > 0
        assert health["notifications"] > 0
        assert health["timeouts"] == 0

    def test_notification_age_tracks_clock(self):
        server = build_server({"a": ScriptedSource()})
        server.run_until("3Dec96")
        aged = server.health()["subscriptions"]["a"]
        # Last delivery was the 3Dec96 midnight poll; the clock stopped
        # exactly there, so the notification is fresh.
        assert aged["notification_age_seconds"] == 0.0
        server.clock = parse_timestamp("3Dec96 6:00am")
        assert server.health()["subscriptions"]["a"][
            "notification_age_seconds"] == 6 * 3600.0

    def test_never_notified_subscription_has_no_age(self):
        server = build_server({"a": ScriptedSource()})
        assert server.health()["subscriptions"]["a"][
            "notification_age_seconds"] is None

    def test_poll_lag_measures_overdue_schedule(self):
        server = build_server({"a": ScriptedSource()})
        server.run_until("3Dec96")
        state = server.subscriptions.get("a")
        state.next_poll = parse_timestamp("2Dec96")  # a day overdue
        health = server.health()
        assert health["subscriptions"]["a"]["poll_lag_seconds"] == 86400.0
        assert metrics_registry().snapshot()[
            "qss.sub.a.poll_lag_seconds"] == 86400.0


class TestTimeoutLadder:
    def test_degraded_then_unhealthy_then_recovered(self):
        release = threading.Event()
        try:
            sources = {"hung": HangingSource(release, hang_day="3Dec96"),
                       "good": ScriptedSource()}
            with build_server(sources, max_workers=2,
                              poll_timeout=0.2) as server:
                server.run_until("2Dec96 6:00pm")
                assert server.health()["status"] == "healthy"

                server.run_until("3Dec96 6:00pm")  # first timeout
                health = server.health()
                assert health["status"] == "degraded"
                assert health["subscriptions"]["hung"]["status"] == "degraded"
                assert health["subscriptions"]["hung"][
                    "consecutive_timeouts"] == 1
                assert health["subscriptions"]["good"]["status"] == "healthy"

                server.run_until("5Dec96 6:00pm")  # streak reaches 3
                health = server.health()
                assert health["subscriptions"]["hung"][
                    "consecutive_timeouts"] == 3
                assert health["subscriptions"]["hung"]["status"] == "unhealthy"
                assert health["status"] == "unhealthy"
                assert health["timeouts"] == 3

                # Custom thresholds reinterpret the same streaks.
                assert server.health(unhealthy_after=10)["status"] == \
                    "degraded"

                # Release the zombie and wait it out; the next poll
                # then actually runs (instead of being skipped) and
                # resets the streak.
                release.set()
                zombie = server._inflight.get("hung")
                if zombie is not None:
                    zombie.exception(timeout=30)
                server.run_until("6Dec96 6:00pm")
                health = server.health()
                assert health["subscriptions"]["hung"]["status"] == "healthy"
                assert health["subscriptions"]["hung"][
                    "consecutive_timeouts"] == 0
                assert health["status"] == "healthy"
        finally:
            release.set()

    def test_gauges_follow_the_streak(self):
        release = threading.Event()
        try:
            with build_server({"hung": HangingSource(release)},
                              max_workers=2, poll_timeout=0.2) as server:
                server.run_until("4Dec96 6:00pm")
                server.health()
                snapshot = metrics_registry().snapshot()
                assert snapshot["qss.sub.hung.consecutive_timeouts"] == 2
        finally:
            release.set()


class TestErrorStreaks:
    def test_errors_degrade_and_recover(self):
        server = build_server({"flaky": RecoveringSource()}, on_error="skip")
        server.run_until("4Dec96 6:00pm")  # crashes on 3Dec and 4Dec
        health = server.health()
        assert health["subscriptions"]["flaky"]["consecutive_errors"] == 2
        assert health["subscriptions"]["flaky"]["status"] == "degraded"
        # Errors alone never escalate to unhealthy: that state is
        # reserved for the timeout streak (a wedged source).
        server.run_until("5Dec96 6:00pm")  # recovers
        health = server.health()
        assert health["subscriptions"]["flaky"]["consecutive_errors"] == 0
        assert health["status"] == "healthy"


class TestHealthEvents:
    def test_poll_timeout_event_emitted(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        release = threading.Event()
        configure_events(events_path, level="warning")
        try:
            with build_server({"hung": HangingSource(release)},
                              max_workers=2, poll_timeout=0.2) as server:
                server.run_until("4Dec96 6:00pm")
        finally:
            release.set()
            disable_events()
        events = [json.loads(line) for line
                  in events_path.read_text(encoding="utf-8").splitlines()]
        timeouts = [e for e in events if e["type"] == "poll_timeout"]
        assert len(timeouts) == 2
        assert timeouts[0]["subscription"] == "hung"
        assert timeouts[0]["level"] == "warning"
        assert [e["consecutive"] for e in timeouts] == [1, 2]

    def test_slow_poll_event_emitted(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        configure_events(events_path, level="warning")
        try:
            server = build_server({"a": ScriptedSource()},
                                  slow_poll_threshold=0.0)
            server.run_until("2Dec96 6:00pm")
        finally:
            disable_events()
        events = [json.loads(line) for line
                  in events_path.read_text(encoding="utf-8").splitlines()]
        slow = [e for e in events if e["type"] == "slow_poll"]
        assert slow, "threshold 0.0 must flag every poll as slow"
        assert slow[0]["subscription"] == "a"
        assert slow[0]["seconds"] >= 0
        assert slow[0]["threshold"] == 0.0
