"""Tests for subscriptions, definitions, and t[i] mappings."""

import pytest

from repro import NEG_INF, Subscription, SubscriptionError, parse_timestamp
from repro.lorel.ast import Query
from repro.qss.subscription import polling_time_mapping


class TestSubscriptionConstruction:
    def test_from_plain_queries(self):
        subscription = Subscription(
            name="S", frequency="every 10 minutes",
            polling_query="select guide.restaurant",
            filter_query="select S.restaurant<cre at T> where T > t[-1]")
        assert isinstance(subscription.polling_query, Query)
        assert isinstance(subscription.filter_query, Query)
        assert subscription.polling_name == "S"

    def test_from_definitions(self):
        """The Example 6.1 subscription, verbatim."""
        subscription = Subscription.from_definitions(
            name="S1", frequency="every night at 11:30pm",
            polling="define polling query Restaurants as "
                    "select guide.restaurant",
            filter_="define filter query NewRestaurants as "
                    "select Restaurants.restaurant<cre at T> "
                    "where T > t[-1]")
        assert subscription.polling_name == "Restaurants"

    def test_lytton_example(self):
        """The Section 6 LyttonRestaurants / NewOnLytton pair."""
        subscription = Subscription.from_definitions(
            name="lytton", frequency="every Friday at 5:00pm",
            polling="define polling query LyttonRestaurants as "
                    "select guide.restaurant where "
                    'guide.restaurant.address.# like "%Lytton%"',
            filter_="define filter query NewOnLytton as "
                    "select LyttonRestaurants.restaurant<cre at T> "
                    "where T > t[-1]")
        assert subscription.polling_name == "LyttonRestaurants"

    def test_swapped_definitions_rejected(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_definitions(
                name="S", frequency="every day at 9:00am",
                polling="define filter query F as select x.y",
                filter_="define polling query P as select x.y")

    def test_polling_query_must_be_lorel(self):
        from repro import ParseError
        with pytest.raises(ParseError):
            Subscription(name="S", frequency="every week",
                         polling_query="select g.<add>x",  # Chorel!
                         filter_query="select S.x")


class TestPollingTimeMapping:
    def test_before_any_poll(self):
        mapping = polling_time_mapping([])
        assert mapping[0] is NEG_INF
        assert mapping[-1] is NEG_INF

    def test_after_one_poll(self):
        t1 = parse_timestamp("30Dec96")
        mapping = polling_time_mapping([t1])
        assert mapping[0] == t1
        assert mapping[-1] is NEG_INF

    def test_after_three_polls(self):
        times = [parse_timestamp(t) for t in ["30Dec96", "31Dec96", "1Jan97"]]
        mapping = polling_time_mapping(times)
        assert mapping[0] == times[2]
        assert mapping[-1] == times[1]
        assert mapping[-2] == times[0]
        assert mapping[-3] is NEG_INF
