"""End-to-end QSS tests: Example 6.1 and beyond."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSC,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import QSSError, SubscriptionError
from repro.timestamps import Timestamp


class ScriptedGuideSource:
    """Example 2.2's timeline: Hakata appears on 1Jan97."""

    def __init__(self):
        self.now: Timestamp | None = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        counter = [0]

        def atom(value):
            counter[0] += 1
            return db.create_node(f"a{counter[0]}", value)

        names = ["Bangkok Cuisine", "Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            db.add_arc(node, "name", atom(name))
            db.add_arc(node, "price", atom(10 * (index + 1)))
        return db


@pytest.fixture
def server():
    instance = QSSServer(start="30Dec96 10:00am", deliver_empty=True)
    instance.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                               name="guide"))
    return instance


def example61_subscription():
    return Subscription.from_definitions(
        name="Restaurants", frequency="every night at 11:30pm",
        polling="define polling query Restaurants as "
                "select guide.restaurant",
        filter_="define filter query NewRestaurants as "
                "select Restaurants.restaurant<cre at T> where T > t[-1]")


class TestExample61:
    """The paper's complete QSS walkthrough."""

    def test_three_poll_timeline(self, server):
        server.subscribe(example61_subscription(), "guide")
        notifications = server.run_until("2Jan97")
        assert len(notifications) == 3
        t1, t2, t3 = notifications
        # t1: both initial restaurants are 'created' (R0 is empty).
        assert t1.polling_time == parse_timestamp("30Dec96 11:30pm")
        assert len(t1.result) == 2
        # t2: nothing changed -> empty result.
        assert len(t2.result) == 0
        # t3: exactly the new Hakata object.
        assert t3.polling_time == parse_timestamp("1Jan97 11:30pm")
        assert len(t3.result) == 1

    def test_hakata_is_the_t3_answer(self, server):
        server.subscribe(example61_subscription(), "guide")
        notifications = server.run_until("2Jan97")
        doem = server.doems.doem("Restaurants")
        ref = notifications[2].result.first().scalar()
        names = [doem.graph.value(child)
                 for _, child in doem.live_children(
                     ref.node, parse_timestamp("2Jan97"), "name")]
        assert names == ["Hakata"]

    def test_silent_when_deliver_empty_off(self):
        server = QSSServer(start="30Dec96 10:00am", deliver_empty=False)
        server.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                                 name="guide"))
        server.subscribe(example61_subscription(), "guide")
        notifications = server.run_until("2Jan97")
        # the empty t2 notification is suppressed
        assert [len(n.result) for n in notifications] == [2, 1]

    def test_notification_answer_is_valid_oem(self, server):
        server.subscribe(example61_subscription(), "guide")
        notifications = server.run_until("2Jan97")
        for notification in notifications:
            notification.answer.check()

    def test_notification_str(self, server):
        server.subscribe(example61_subscription(), "guide")
        notifications = server.run_until("31Dec96")
        assert "Restaurants" in str(notifications[0])


class TestServerMechanics:
    def test_clock_cannot_go_backwards(self, server):
        server.run_until("31Dec96")
        with pytest.raises(QSSError):
            server.run_until("30Dec96")

    def test_duplicate_subscription_rejected(self, server):
        server.subscribe(example61_subscription(), "guide")
        with pytest.raises(SubscriptionError):
            server.subscribe(example61_subscription(), "guide")

    def test_unknown_wrapper_rejected(self, server):
        with pytest.raises(QSSError):
            server.subscribe(example61_subscription(), "nope")

    def test_unsubscribe_stops_polls(self, server):
        server.subscribe(example61_subscription(), "guide")
        server.run_until("31Dec96")
        server.unsubscribe("Restaurants")
        assert server.run_until("5Jan97") == []

    def test_multiple_subscriptions_one_server(self, server):
        server.subscribe(example61_subscription(), "guide")
        cheap = Subscription(
            name="Cheap", frequency="every day at 8:00am",
            polling_query="select guide.restaurant "
                          "where guide.restaurant.price < 15",
            filter_query="select Cheap.restaurant<cre at T> where T > t[-1]")
        server.subscribe(cheap, "guide")
        notifications = server.run_until("1Jan97 9:00am")
        subscribers = {n.subscription for n in notifications}
        assert subscribers == {"Restaurants", "Cheap"}

    def test_polls_execute_in_time_order(self, server):
        server.subscribe(example61_subscription(), "guide")
        other = Subscription(
            name="Hourly", frequency="every 12 hours",
            polling_query="select guide.restaurant",
            filter_query="select Hourly.restaurant<cre at T> where T > t[-1]")
        server.subscribe(other, "guide")
        notifications = server.run_until("1Jan97")
        times = [n.polling_time for n in notifications]
        assert times == sorted(times)

    def test_update_notifications(self):
        """A filter query over upd annotations (price-change watch)."""

        class PriceSource(ScriptedGuideSource):
            def export(self):
                db = super().export()
                if self.now >= parse_timestamp("1Jan97"):
                    target = [n for n in db.nodes() if db.value(n) == 10][0]
                    db.update_value(target, 25)
                return db

        server = QSSServer(start="30Dec96 10:00am")
        server.register_wrapper("guide", Wrapper(PriceSource(), name="guide"))
        subscription = Subscription(
            name="Watch", frequency="every day at 6:00am",
            polling_query="select guide.restaurant",
            filter_query="select OV, NV from "
                         "Watch.restaurant.price<upd at T from OV to NV> "
                         "where T > t[-1]")
        server.subscribe(subscription, "guide")
        notifications = server.run_until("2Jan97")
        assert len(notifications) == 1
        row = notifications[0].result.first()
        assert (row["old-value"], row["new-value"]) == (10, 25)


class TestQSC:
    def test_client_inbox(self, server):
        client = QSC(server, user="alice")
        client.subscribe(
            name="Restaurants", frequency="every night at 11:30pm",
            polling_query="define polling query Restaurants as "
                          "select guide.restaurant",
            filter_query="define filter query New as "
                         "select Restaurants.restaurant<cre at T> "
                         "where T > t[-1]",
            wrapper="guide")
        server.run_until("2Jan97")
        assert len(client.inbox) == 3
        assert "Restaurants" in client.render_inbox()

    def test_two_clients_separate_inboxes(self, server):
        alice, bob = QSC(server, "alice"), QSC(server, "bob")
        alice.subscribe("A", "every day at 1:00am",
                        "select guide.restaurant",
                        "select A.restaurant<cre at T> where T > t[-1]",
                        wrapper="guide")
        bob.subscribe("B", "every day at 2:00am",
                      "select guide.restaurant",
                      "select B.restaurant<cre at T> where T > t[-1]",
                      wrapper="guide")
        server.run_until("1Jan97 3:00am")
        assert {n.subscription for n in alice.inbox} == {"A"}
        assert {n.subscription for n in bob.inbox} == {"B"}

    def test_callback(self, server):
        client = QSC(server)
        seen = []
        client.on_notification(lambda n: seen.append(n.subscription))
        client.subscribe("S", "every day at 1:00am",
                         "select guide.restaurant",
                         "select S.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("31Dec96 2:00am")
        assert seen == ["S"]

    def test_unsubscribe_requires_ownership(self, server):
        client = QSC(server)
        with pytest.raises(SubscriptionError):
            client.unsubscribe("never-created")

    def test_render_empty_inbox(self, server):
        assert QSC(server).render_inbox() == "(no notifications)"
