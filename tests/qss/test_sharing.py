"""Tests for DOEM sharing across subscriptions (Section 6.1, idea #1)."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)


class CountingSource:
    """Counts exports so tests can see how often the source was hit."""

    def __init__(self):
        self.now = None
        self.export_count = 0

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        self.export_count += 1
        db = OEMDatabase(root="guide")
        names = ["Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            atom = db.create_node(f"a{index}", name)
            db.add_arc(node, "name", atom)
        return db


def subscription(name, hour):
    return Subscription(
        name=name, frequency=f"every day at {hour}:00am",
        polling_query="select guide.restaurant",
        filter_query=f"select {name}.restaurant<cre at T> where T > t[-1]",
        polling_name=name)


def make_server(share):
    server = QSSServer(start="30Dec96", deliver_empty=True,
                       share_by_polling_query=share)
    server.register_wrapper("guide", Wrapper(CountingSource(), name="guide"))
    return server


class TestSharing:
    def test_shared_doem_is_one_object(self):
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        assert server.doems.doem("A") is server.doems.doem("B")
        assert server.doems.shared_with("A") == ["B"]

    def test_unshared_doems_are_distinct(self):
        server = make_server(share=False)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        assert server.doems.doem("A") is not server.doems.doem("B")

    def test_notifications_unchanged_by_sharing(self):
        results = {}
        for share in (False, True):
            server = make_server(share)
            server.subscribe(subscription("A", 6), "guide")
            server.subscribe(subscription("B", 7), "guide")
            notifications = server.run_until("2Jan97")
            results[share] = [(n.subscription, str(n.polling_time),
                               len(n.result)) for n in notifications]
        assert results[False] == results[True]

    def test_sharing_halves_doem_state(self):
        shared = make_server(True)
        separate = make_server(False)
        for server in (shared, separate):
            server.subscribe(subscription("A", 6), "guide")
            server.subscribe(subscription("B", 7), "guide")
            server.run_until("2Jan97")
        shared_nodes = len({id(shared.doems.doem(n)) for n in "AB"})
        separate_nodes = len({id(separate.doems.doem(n)) for n in "AB"})
        assert shared_nodes == 1 and separate_nodes == 2

    def test_redundant_poll_folds_empty_set(self):
        """B's poll an hour after A's sees identical data: empty diff."""
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        server.run_until("31Dec96")
        assert server.doems.last_diff_stats["B"].total == 0
        assert server.doems.last_diff_stats["A"].total > 0

    def test_different_polling_queries_not_merged(self):
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        other = Subscription(
            name="C", frequency="every day at 8:00am",
            polling_query='select guide.restaurant '
                          'where guide.restaurant.name like "%a%"',
            filter_query="select C.restaurant<cre at T> where T > t[-1]")
        server.subscribe(other, "guide")
        assert server.doems.doem("A") is not server.doems.doem("C")

    def test_unsubscribe_keeps_shared_doem_alive(self):
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        server.run_until("31Dec96")
        before = server.doems.doem("B").annotation_count()
        server.unsubscribe("A")
        assert server.doems.doem("B").annotation_count() == before

    def test_last_unsubscribe_drops_state(self):
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        server.run_until("31Dec96")
        server.unsubscribe("A")
        server.unsubscribe("B")
        # a fresh subscription under the same polling query starts empty
        server.subscribe(subscription("C", 9), "guide")
        assert server.doems.doem("C").annotation_count() == 0

    def test_filter_queries_use_own_time_variables(self):
        """Sharing must not leak one subscription's t[-1] into another."""
        server = make_server(share=True)
        server.subscribe(subscription("A", 6), "guide")
        server.subscribe(subscription("B", 7), "guide")
        notifications = server.run_until("2Jan97")
        by_sub = {}
        for n in notifications:
            by_sub.setdefault(n.subscription, []).append(len(n.result))
        # Both see: everything at the first poll, Hakata on 1Jan97.
        assert by_sub["A"] == [1, 0, 1]
        assert by_sub["B"] == [1, 0, 1]
