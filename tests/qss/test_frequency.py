"""Tests for frequency specifications."""

import pytest

from repro import FrequencyError, FrequencySpec, parse_timestamp


class TestIntervalSpecs:
    def test_every_10_minutes(self):
        spec = FrequencySpec.parse("every 10 minutes")
        start = parse_timestamp("1Jan97")
        times = spec.polling_times(start, 3)
        assert [when - start for when in times] == [600, 1200, 1800]

    def test_singular_unit(self):
        spec = FrequencySpec.parse("every minute")
        assert spec.period_seconds == 60

    def test_every_2_hours(self):
        assert FrequencySpec.parse("every 2 hours").period_seconds == 7200

    def test_every_3_days(self):
        assert FrequencySpec.parse("every 3 days").period_seconds == 3 * 86400

    def test_every_week(self):
        assert FrequencySpec.parse("every week").period_seconds == 604800

    def test_zero_interval_rejected(self):
        with pytest.raises(FrequencyError):
            FrequencySpec.parse("every 0 minutes")


class TestDailySpecs:
    def test_every_night_at_1130pm(self):
        """The Example 6.1 frequency specification."""
        spec = FrequencySpec.parse("every night at 11:30pm")
        start = parse_timestamp("30Dec96 10:00am")
        times = spec.polling_times(start, 3)
        assert times == [parse_timestamp("30Dec96 11:30pm"),
                         parse_timestamp("31Dec96 11:30pm"),
                         parse_timestamp("1Jan97 11:30pm")]

    def test_start_after_todays_slot(self):
        spec = FrequencySpec.parse("every day at 9:00am")
        start = parse_timestamp("30Dec96 10:00am")
        assert spec.next_after(start) == parse_timestamp("31Dec96 9:00am")

    def test_24h_clock(self):
        spec = FrequencySpec.parse("every day at 23:30")
        assert (spec.hour, spec.minute) == (23, 30)

    def test_midnight_and_noon(self):
        assert FrequencySpec.parse("every day at 12:00am").hour == 0
        assert FrequencySpec.parse("every day at 12:00pm").hour == 12

    def test_bad_clock_rejected(self):
        with pytest.raises(FrequencyError):
            FrequencySpec.parse("every day at 25:00")
        with pytest.raises(FrequencyError):
            FrequencySpec.parse("every day at 13:00pm")


class TestWeeklySpecs:
    def test_every_friday_at_5pm(self):
        """The paper's other example: 'every Friday at 5:00pm'."""
        spec = FrequencySpec.parse("every Friday at 5:00pm")
        # 30Dec96 was a Monday.
        start = parse_timestamp("30Dec96")
        first = spec.next_after(start)
        assert first == parse_timestamp("3Jan97 5:00pm")
        second = spec.next_after(first)
        assert second == parse_timestamp("10Jan97 5:00pm")

    def test_same_day_later_slot(self):
        spec = FrequencySpec.parse("every monday at 5:00pm")
        start = parse_timestamp("30Dec96 9:00am")  # a Monday morning
        assert spec.next_after(start) == parse_timestamp("30Dec96 5:00pm")

    def test_same_day_passed_slot(self):
        spec = FrequencySpec.parse("every monday at 5:00pm")
        start = parse_timestamp("30Dec96 6:00pm")
        assert spec.next_after(start) == parse_timestamp("6Jan97 5:00pm")

    def test_unknown_weekday(self):
        with pytest.raises(FrequencyError):
            FrequencySpec.parse("every someday at 5:00pm")


class TestGeneral:
    def test_unrecognizable(self):
        with pytest.raises(FrequencyError):
            FrequencySpec.parse("whenever I feel like it")

    def test_iter_polling_times(self):
        spec = FrequencySpec.parse("every 1 hours")
        stream = spec.iter_polling_times(parse_timestamp("1Jan97"))
        first = next(stream)
        second = next(stream)
        assert second - first == 3600

    def test_str_preserves_text(self):
        assert str(FrequencySpec.parse("every 10 minutes")) == \
            "every 10 minutes"
