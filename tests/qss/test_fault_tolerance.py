"""Tests for QSS fault tolerance: failing sources must not wedge the server."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import QSSError


class FlakySource:
    """Fails every export whose day-of-month is even."""

    def __init__(self):
        self.now = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        if self.now is not None and self.now.to_datetime().day % 2 == 0:
            raise ConnectionError("source unreachable")
        db = OEMDatabase(root="guide")
        node = db.create_node("r0", COMPLEX)
        db.add_arc("guide", "restaurant", node)
        atom = db.create_node("a0", "Janta")
        db.add_arc(node, "name", atom)
        return db


def make_server(on_error):
    server = QSSServer(start="31Dec96 10:00am", deliver_empty=True,
                       on_error=on_error)  # first poll: 1Jan97 9am
    server.register_wrapper("guide", Wrapper(FlakySource(), name="guide"))
    server.subscribe(Subscription(
        name="S", frequency="every day at 9:00am",
        polling_query="select guide.restaurant",
        filter_query="select S.restaurant<cre at T> where T > t[-1]"),
        "guide")
    return server


class TestOnErrorRaise:
    def test_default_raises(self):
        server = make_server("raise")
        server.run_until("1Jan97 10:00am")  # 1Jan (odd) succeeds
        with pytest.raises(ConnectionError):
            server.run_until("2Jan97 10:00am")  # 2Jan (even) fails


class TestOnErrorSkip:
    def test_failed_polls_logged_and_skipped(self):
        server = make_server("skip")
        server.run_until("6Jan97 10:00am")
        failed_days = sorted(when.to_datetime().day
                             for when, _, _ in server.error_log)
        assert failed_days == [2, 4, 6]
        for _, name, error in server.error_log:
            assert name == "S"
            assert isinstance(error, ConnectionError)

    def test_schedule_keeps_moving(self):
        server = make_server("skip")
        server.run_until("6Jan97 10:00am")
        state = server.subscriptions.get("S")
        # 6 scheduled polls: 1..6 Jan; all recorded (failed or not).
        assert state.poll_count == 6

    def test_successful_polls_still_notify(self):
        server = make_server("skip")
        notifications = server.run_until("6Jan97 10:00am")
        notified_days = [n.polling_time.to_datetime().day
                         for n in notifications]
        assert notified_days == [1, 3, 5]

    def test_doem_unaffected_by_failures(self):
        server = make_server("skip")
        server.run_until("6Jan97 10:00am")
        doem = server.doems.doem("S")
        # only the first successful poll created anything; later successes
        # saw identical data.
        days = sorted(t.to_datetime().day for t in doem.timestamps())
        assert days == [1]

    def test_bad_mode_rejected(self):
        with pytest.raises(QSSError):
            QSSServer(on_error="explode")
