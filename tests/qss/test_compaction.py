"""Tests for the QSS retention policy (automatic DOEM compaction)."""

import pytest

from repro import (
    QSSServer,
    RestaurantGuideSource,
    Subscription,
    Wrapper,
)
from repro.errors import QSSError


def make_server(keep=None, **kwargs):
    server = QSSServer(start="1Dec96", deliver_empty=True,
                       compact_keep_polls=keep, **kwargs)
    source = RestaurantGuideSource(seed=13, initial_restaurants=8,
                                   events_per_day=3.0)
    server.register_wrapper("guide", Wrapper(source, name="guide"))
    server.subscribe(Subscription(
        name="S", frequency="every day at 6:00pm",
        polling_query="select guide.restaurant",
        filter_query="select S.restaurant<cre at T> where T > t[-1]"),
        "guide")
    return server


class TestRetentionPolicy:
    def test_history_bounded(self):
        server = make_server(keep=3)
        server.run_until("20Dec96")
        doem = server.doems.doem("S")
        # at most the last 3 polling instants survive in annotations
        assert len(doem.timestamps()) <= 3

    def test_unbounded_grows(self):
        server = make_server(keep=None)
        server.run_until("20Dec96")
        assert len(server.doems.doem("S").timestamps()) > 3

    def test_notifications_identical_to_unbounded(self):
        """Filter queries look back one poll; keep>=1 must not change them."""
        outputs = {}
        for keep in (None, 2):
            server = make_server(keep=keep)
            notifications = server.run_until("15Dec96")
            outputs[keep] = [(str(n.polling_time), len(n.result))
                             for n in notifications]
        assert outputs[None] == outputs[2]

    def test_space_actually_saved(self):
        bounded = make_server(keep=2)
        unbounded = make_server(keep=None)
        bounded.run_until("25Dec96")
        unbounded.run_until("25Dec96")
        assert bounded.doems.doem("S").annotation_count() < \
            unbounded.doems.doem("S").annotation_count()

    def test_incompatible_with_sharing(self):
        with pytest.raises(QSSError):
            QSSServer(compact_keep_polls=2, share_by_polling_query=True)

    def test_bad_keep_value(self):
        with pytest.raises(QSSError):
            QSSServer(compact_keep_polls=0)

    def test_manual_compaction_of_shared_doem_refused(self):
        server = QSSServer(start="1Dec96", share_by_polling_query=True,
                           deliver_empty=True)
        source = RestaurantGuideSource(seed=13)
        server.register_wrapper("guide", Wrapper(source, name="guide"))
        for name, hour in (("A", 6), ("B", 7)):
            server.subscribe(Subscription(
                name=name, frequency=f"every day at {hour}:00am",
                polling_query="select guide.restaurant",
                filter_query=f"select {name}.restaurant<cre at T> "
                             f"where T > t[-1]", polling_name=name),
                "guide")
        server.run_until("3Dec96")
        with pytest.raises(QSSError):
            server.doems.compact_before("A", "2Dec96")
