"""Additional QSS client and notification-shape tests."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSC,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import SubscriptionError


class TinySource:
    def __init__(self):
        self.now = None
        self.extra = False

    def advance(self, when):
        self.now = parse_timestamp(when)
        if self.now >= parse_timestamp("1Jan97"):
            self.extra = True

    def export(self):
        db = OEMDatabase(root="guide")
        names = ["Janta"] + (["Hakata"] if self.extra else [])
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            atom = db.create_node(f"a{index}", name)
            db.add_arc(node, "name", atom)
        return db


@pytest.fixture
def server():
    instance = QSSServer(start="30Dec96", deliver_empty=True)
    instance.register_wrapper("guide", Wrapper(TinySource(), name="guide"))
    return instance


class TestClientLifecycle:
    def test_unsubscribe_then_resubscribe(self, server):
        client = QSC(server)
        client.subscribe("S", "every day at 9:00am",
                         "select guide.restaurant",
                         "select S.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("31Dec96")
        first_inbox = len(client.inbox)
        client.unsubscribe("S")
        assert client.subscriptions() == []
        client.subscribe("S", "every day at 9:00am",
                         "select guide.restaurant",
                         "select S.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("1Jan97")
        # the fresh subscription starts over: its first poll reports all
        assert len(client.inbox) > first_inbox

    def test_notifications_filter_by_name(self, server):
        client = QSC(server)
        client.subscribe("A", "every day at 8:00am",
                         "select guide.restaurant",
                         "select A.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        client.subscribe("B", "every day at 9:00am",
                         "select guide.restaurant",
                         "select B.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("31Dec96")
        assert {n.subscription for n in client.notifications()} == {"A", "B"}
        assert {n.subscription for n in client.notifications("A")} == {"A"}

    def test_notification_answer_contains_subobjects(self, server):
        client = QSC(server)
        client.subscribe("S", "every day at 9:00am",
                         "select guide.restaurant",
                         "select S.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("31Dec96")
        answer = client.inbox[0].answer
        answer.check()
        values = {answer.value(node) for node in answer.nodes()
                  if answer.is_atomic(node)}
        assert "Janta" in values

    def test_notification_bool_and_poll_index(self, server):
        client = QSC(server)
        client.subscribe("S", "every day at 9:00am",
                         "select guide.restaurant",
                         "select S.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide")
        server.run_until("1Jan97 10:00am")
        assert bool(client.inbox[0]) is True      # created Janta
        assert bool(client.inbox[1]) is False     # quiet day
        assert [n.poll_index for n in client.inbox] == [1, 2, 3]

    def test_subscribe_with_polling_name_override(self, server):
        client = QSC(server)
        client.subscribe("MySub", "every day at 9:00am",
                         "select guide.restaurant",
                         "select Places.restaurant<cre at T> where T > t[-1]",
                         wrapper="guide", polling_name="Places")
        notifications = server.run_until("31Dec96")
        assert len(notifications) == 1 and len(notifications[0].result) == 1
