"""QSS + durable store: restart a server without re-polling sources."""

from __future__ import annotations

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.store import close_store, is_store, open_store, sanitize_name
from repro.timestamps import Timestamp


class ScriptedGuideSource:
    """Example 2.2's timeline: Hakata appears on 1Jan97."""

    def __init__(self):
        self.now: Timestamp | None = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        counter = [0]

        def atom(value):
            counter[0] += 1
            return db.create_node(f"a{counter[0]}", value)

        names = ["Bangkok Cuisine", "Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            db.add_arc(node, "name", atom(name))
            db.add_arc(node, "price", atom(10 * (index + 1)))
        return db


def example61_subscription():
    return Subscription.from_definitions(
        name="Restaurants", frequency="every night at 11:30pm",
        polling="define polling query Restaurants as "
                "select guide.restaurant",
        filter_="define filter query NewRestaurants as "
                "select Restaurants.restaurant<cre at T> where T > t[-1]")


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "qss-store"
    yield path
    close_store(path)


def run_first_server(store_path, until="2Jan97"):
    server = QSSServer(start="30Dec96 10:00am", deliver_empty=True,
                       store=str(store_path))
    server.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                             name="guide"))
    server.subscribe(example61_subscription(), "guide")
    notifications = server.run_until(until)
    return server, notifications


class TestDurableRestart:
    def test_server_persists_polled_changes(self, store_path):
        server, notifications = run_first_server(store_path)
        assert len(notifications) == 3
        assert is_store(store_path)
        server.close()
        store = open_store(store_path, "ro")
        assert store.names(), "polled change sets must land in the store"
        # Only non-empty change sets are persisted: 30Dec96 (initial
        # snapshot) and 1Jan97 (Hakata); the quiet 31Dec96 poll is not.
        log = store.log(store.names()[0])
        assert len(log) == 2

    def test_restart_recovers_doem_without_polling(self, store_path):
        first, _ = run_first_server(store_path)
        key = next(iter(first.doems._doems))
        original = first.doems.doem(key)
        first.close()
        close_store(store_path)

        # A second server over the same store, with *no* wrapper
        # registered: any poll attempt would fail, so equality proves
        # the DOEM was rebuilt purely from the log.
        second = QSSServer(start="2Jan97", store=str(store_path))
        recovered = second.doems.doem(key)
        assert recovered.timestamps() == original.timestamps()
        assert recovered.same_as(original)
        second.close()

    def test_restarted_server_keeps_answering(self, store_path):
        """Polls resume on top of the recovered history."""
        first, _ = run_first_server(store_path)
        key = next(iter(first.doems._doems))
        first.close()
        close_store(store_path)

        second = QSSServer(start="2Jan97", deliver_empty=True,
                           store=str(store_path))
        second.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                                 name="guide"))
        second.subscribe(example61_subscription(), "guide")
        notifications = second.run_until("3Jan97")
        assert notifications
        # The recovered history plus the new poll's (empty) delta: the
        # DOEM still spans the pre-restart timestamps.
        doem = second.doems.doem(key)
        assert parse_timestamp("30Dec96 11:30pm") in doem.timestamps()
        second.close()

    def test_store_key_is_sanitized(self, store_path):
        server, _ = run_first_server(store_path)
        key = next(iter(server.doems._doems))
        server.close()
        store = open_store(store_path, "ro")
        assert sanitize_name(key) in store.names()

    def test_compaction_reaches_the_store(self, store_path):
        server, _ = run_first_server(store_path)
        key = next(iter(server.doems._doems))
        log = server.store.log(sanitize_name(key))
        generation_before = log.info()["generation"]
        server.doems.compact_before(key, "31Dec96")
        assert server.store.log(sanitize_name(key)) is log
        assert log.info()["generation"] > generation_before
        server.close()
