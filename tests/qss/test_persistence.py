"""Tests for QSS server persistence (the Figure 7 stores)."""

import pytest

from repro import (
    COMPLEX,
    LoreStore,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import QSSError
from repro.qss.persistence import load_server, save_server


class ScriptedSource:
    """A source whose content is keyed by date thresholds."""

    def __init__(self):
        self.now = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        names = ["Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        if self.now is not None and self.now >= parse_timestamp("5Jan97"):
            names.append("Zibibbo")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            atom = db.create_node(f"a{index}", name)
            db.add_arc(node, "name", atom)
        return db


def make_server(**kwargs):
    server = QSSServer(start="30Dec96", deliver_empty=True, **kwargs)
    server.register_wrapper("guide", Wrapper(ScriptedSource(), name="guide"))
    server.subscribe(Subscription(
        name="S", frequency="every day at 9:00am",
        polling_query="select guide.restaurant",
        filter_query="select S.restaurant<cre at T> where T > t[-1]"),
        "guide")
    return server


class TestSaveLoad:
    def test_restart_continues_timeline(self, tmp_path):
        """Stop after Hakata, restart, observe only Zibibbo -- the DOEM
        history and the t[-1] schedule both survived."""
        server = make_server()
        first_half = server.run_until("2Jan97")
        # polls at 30Dec/31Dec/1Jan 9am: initial Janta, nothing, Hakata
        assert [len(n.result) for n in first_half] == [1, 0, 1]

        store = LoreStore(tmp_path)
        save_server(server, store)

        restored = load_server(LoreStore(tmp_path))
        restored.register_wrapper("guide",
                                  Wrapper(ScriptedSource(), name="guide"))
        second_half = restored.run_until("6Jan97")
        sizes = [len(n.result) for n in second_half]
        # 3Jan, 4Jan: nothing; 5Jan: Zibibbo appears; 6Jan handled next day
        assert sizes.count(1) == 1
        assert sum(sizes) == 1

    def test_clock_and_schedule_survive(self, tmp_path):
        server = make_server()
        server.run_until("2Jan97")
        save_server(server, LoreStore(tmp_path))
        restored = load_server(LoreStore(tmp_path))
        assert restored.clock == server.clock
        original = server.subscriptions.get("S")
        revived = restored.subscriptions.get("S")
        assert revived.next_poll == original.next_poll
        assert revived.polling_times == original.polling_times

    def test_doem_history_survives_exactly(self, tmp_path):
        server = make_server()
        server.run_until("2Jan97")
        save_server(server, LoreStore(tmp_path))
        restored = load_server(LoreStore(tmp_path))
        assert restored.doems.doem("S").same_as(server.doems.doem("S"))

    def test_sharing_structure_survives(self, tmp_path):
        server = QSSServer(start="30Dec96", deliver_empty=True,
                           share_by_polling_query=True)
        server.register_wrapper("guide",
                                Wrapper(ScriptedSource(), name="guide"))
        for name, hour in (("A", 6), ("B", 7)):
            server.subscribe(Subscription(
                name=name, frequency=f"every day at {hour}:00am",
                polling_query="select guide.restaurant",
                filter_query=f"select {name}.restaurant<cre at T> "
                             f"where T > t[-1]", polling_name=name),
                "guide")
        server.run_until("31Dec96")
        save_server(server, LoreStore(tmp_path))
        restored = load_server(LoreStore(tmp_path))
        assert restored.doems.doem("A") is restored.doems.doem("B")

    def test_requires_durable_store(self):
        server = make_server()
        with pytest.raises(QSSError):
            save_server(server, LoreStore())
        with pytest.raises(QSSError):
            load_server(LoreStore())

    def test_missing_state_raises(self, tmp_path):
        with pytest.raises(QSSError):
            load_server(LoreStore(tmp_path))
