"""Tests for the paper's other snapshot modes (Section 6): on-demand
polls and source-side trigger signals."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import QSSError


class MutableSource:
    """A source whose content the test controls directly."""

    def __init__(self):
        self.names = ["Janta"]
        self.now = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        for index, name in enumerate(self.names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            atom = db.create_node(f"a{index}", name)
            db.add_arc(node, "name", atom)
        return db


@pytest.fixture
def setup():
    source = MutableSource()
    server = QSSServer(start="30Dec96", deliver_empty=True)
    server.register_wrapper("guide", Wrapper(source, name="guide"))
    server.subscribe(Subscription(
        name="S", frequency="every day at 9:00am",
        polling_query="select guide.restaurant",
        filter_query="select S.restaurant<cre at T> where T > t[-1]"),
        "guide")
    return server, source


class TestPollNow:
    def test_on_demand_poll_sees_fresh_data(self, setup):
        server, source = setup
        server.run_until("30Dec96 10:00am")      # scheduled poll happened
        source.names.append("Hakata")
        server.run_until("30Dec96 2:00pm")       # clock moves, nothing due
        notification = server.poll_now("S")
        assert notification is not None
        assert len(notification.result) == 1     # only Hakata is new
        assert notification.polling_time == parse_timestamp("30Dec96 2:00pm")

    def test_on_demand_poll_joins_timeline(self, setup):
        server, source = setup
        server.run_until("30Dec96 10:00am")
        server.run_until("30Dec96 2:00pm")
        server.poll_now("S")
        state = server.subscriptions.get("S")
        assert state.poll_count == 2
        # the scheduled cadence continues from the on-demand poll
        assert state.next_poll == parse_timestamp("31Dec96 9:00am")
        # and the next scheduled poll's t[-1] is the on-demand instant:
        source.names.append("Zibibbo")
        notifications = server.run_until("31Dec96 10:00am")
        assert [len(n.result) for n in notifications] == [1]

    def test_double_poll_at_same_instant_rejected(self, setup):
        server, _ = setup
        server.run_until("30Dec96 10:00am")  # scheduled poll at 9:00am
        assert server.poll_now("S") is not None  # clock 10:00 > 9:00: fine
        with pytest.raises(QSSError):
            server.poll_now("S")  # clock has not moved past the last poll

    def test_unknown_subscription(self, setup):
        server, _ = setup
        from repro.errors import SubscriptionError
        with pytest.raises(SubscriptionError):
            server.poll_now("nope")


class TestSourceSignal:
    def test_signal_polls_all_matching_subscriptions(self, setup):
        server, source = setup
        server.subscribe(Subscription(
            name="S2", frequency="every day at 10:00am",
            polling_query="select guide.restaurant",
            filter_query="select S2.restaurant<cre at T> where T > t[-1]"),
            "guide")
        server.run_until("30Dec96 11:00am")   # both scheduled polls ran
        source.names.append("Hakata")
        server.run_until("30Dec96 3:00pm")
        notifications = server.on_source_signal("guide")
        assert {n.subscription for n in notifications} == {"S", "S2"}
        assert all(len(n.result) == 1 for n in notifications)

    def test_signal_skips_up_to_date_subscriptions(self, setup):
        server, _ = setup
        server.run_until("30Dec96 9:00am")  # poll at exactly 9:00
        # clock == last poll time: nothing to do
        assert server.on_source_signal("guide") == []

    def test_signal_on_unknown_wrapper(self, setup):
        server, _ = setup
        with pytest.raises(QSSError):
            server.on_source_signal("nope")

    def test_signal_only_touches_its_wrapper(self, setup):
        server, source = setup
        other = MutableSource()
        server.register_wrapper("other", Wrapper(other, name="guide"))
        server.subscribe(Subscription(
            name="O", frequency="every day at 8:00am",
            polling_query="select guide.restaurant",
            filter_query="select O.restaurant<cre at T> where T > t[-1]"),
            "other")
        server.run_until("30Dec96 11:00am")
        source.names.append("Hakata")
        server.run_until("30Dec96 3:00pm")
        notifications = server.on_source_signal("guide")
        assert {n.subscription for n in notifications} == {"S"}
