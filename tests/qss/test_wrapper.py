"""Tests for wrappers and mediators (the Tsimmis substrate)."""

import pytest

from repro import (
    COMPLEX,
    LibrarySource,
    OEMDatabase,
    QSSServer,
    StaticSource,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.qss.wrapper import Mediator
from repro.errors import QSSError
from tests.conftest import make_guide_db


class TestWrapper:
    def test_poll_packages_answer(self):
        wrapper = Wrapper(StaticSource(make_guide_db()), name="guide")
        result = wrapper.poll("select guide.restaurant")
        assert result.root == "answer"
        assert len(list(result.children("answer", "restaurant"))) == 2
        result.check()

    def test_poll_includes_recursive_subobjects(self):
        wrapper = Wrapper(StaticSource(make_guide_db()), name="guide")
        result = wrapper.poll("select guide.restaurant")
        values = {result.value(node) for node in result.nodes()
                  if not result.is_complex(node)}
        # deep values came along: street/city of Janta's address
        assert {"Lytton", "Palo Alto"} <= values

    def test_poll_preserves_shared_structure(self):
        wrapper = Wrapper(StaticSource(make_guide_db()), name="guide")
        result = wrapper.poll("select guide.restaurant")
        # the parking object is shared by both copied restaurants
        shared = [node for node in result.nodes()
                  if len(set(result.parents(node))) > 1]
        assert shared

    def test_selective_polling_query(self):
        wrapper = Wrapper(StaticSource(make_guide_db()), name="guide")
        result = wrapper.poll(
            'select guide.restaurant '
            'where guide.restaurant.name like "%Janta%"')
        assert len(list(result.children("answer", "restaurant"))) == 1

    def test_advance_reaches_source(self):
        source = StaticSource(make_guide_db())
        wrapper = Wrapper(source, name="guide")
        wrapper.advance("5Jan97")
        assert source.now == parse_timestamp("5Jan97")

    def test_poll_count(self):
        wrapper = Wrapper(StaticSource(make_guide_db()), name="guide")
        wrapper.poll("select guide.restaurant")
        wrapper.poll("select guide.restaurant")
        assert wrapper.poll_count == 2


class TestMediator:
    def _mediator(self):
        return Mediator({
            "guide": StaticSource(make_guide_db()),
            "library": LibrarySource(seed=1, books=3),
        })

    def test_requires_sources(self):
        with pytest.raises(QSSError):
            Mediator({})

    def test_fused_export_shape(self):
        mediator = self._mediator()
        fused = mediator.export()
        fused.check()
        assert len(list(fused.children(fused.root, "guide"))) == 1
        assert len(list(fused.children(fused.root, "library"))) == 1

    def test_cross_source_query(self):
        mediator = self._mediator()
        result = mediator.poll("select R, B from med.guide.restaurant R, "
                               "med.library.book B")
        rows = list(result.children("answer", "row"))
        assert len(rows) == 2 * 3  # restaurants x books

    def test_single_source_query(self):
        mediator = self._mediator()
        result = mediator.poll("select med.library.book")
        assert len(list(result.children("answer", "book"))) == 3

    def test_advance_fans_out(self):
        mediator = self._mediator()
        mediator.advance("5Jan97")
        for source in mediator.sources.values():
            assert source.now == parse_timestamp("5Jan97")

    def test_mediator_as_qss_wrapper(self):
        """A subscription polling two sources through one mediator."""
        mediator = self._mediator()
        server = QSSServer(start="30Dec96", deliver_empty=True)
        server.register_wrapper("med", mediator)
        server.subscribe(Subscription(
            name="Everything", frequency="every day at 9:00am",
            polling_query="select med.guide.restaurant, med.library.book",
            filter_query="select Everything.#<cre at T> where T > t[-1]"),
            "med")
        notifications = server.run_until("31Dec96")
        # first poll: every fetched object freshly created
        assert notifications and len(notifications[0].result) > 0
