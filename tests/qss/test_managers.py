"""Tests for the QSS internal managers, including the space strategies."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    StaticSource,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.qss.managers import DOEMManager, QueryManager, SubscriptionManager
from repro.errors import QSSError, SubscriptionError


def small_db(names):
    db = OEMDatabase(root="guide")
    for index, name in enumerate(names):
        node = db.create_node(f"r{index}", COMPLEX)
        db.add_arc("guide", "restaurant", node)
        atom = db.create_node(f"a{index}", name)
        db.add_arc(node, "name", atom)
    return db


def subscription(name="S"):
    return Subscription(
        name=name, frequency="every day at 9:00am",
        polling_query="select guide.restaurant",
        filter_query=f"select {name}.restaurant<cre at T> where T > t[-1]")


class TestSubscriptionManager:
    def test_add_schedules_first_poll(self):
        manager = SubscriptionManager()
        state = manager.add(subscription(), "w", "30Dec96 10:00am")
        assert state.next_poll == parse_timestamp("31Dec96 9:00am")

    def test_due_filtering(self):
        manager = SubscriptionManager()
        manager.add(subscription("A"), "w", "30Dec96")
        assert manager.due("30Dec96 8:00am") == []
        assert len(manager.due("30Dec96 10:00am")) == 1

    def test_record_poll_advances(self):
        manager = SubscriptionManager()
        state = manager.add(subscription(), "w", "30Dec96")
        manager.record_poll(state, state.next_poll)
        assert state.poll_count == 1
        assert state.next_poll == parse_timestamp("31Dec96 9:00am")

    def test_remove_and_get(self):
        manager = SubscriptionManager()
        manager.add(subscription(), "w", "30Dec96")
        assert manager.get("S").wrapper_name == "w"
        manager.remove("S")
        with pytest.raises(SubscriptionError):
            manager.get("S")


class TestQueryManager:
    def test_poll_advances_and_packages(self):
        manager = QueryManager()
        source = StaticSource(small_db(["Janta"]))
        manager.register_wrapper("guide", Wrapper(source, name="guide"))
        state_manager = SubscriptionManager()
        state = state_manager.add(subscription(), "guide", "30Dec96")
        result = manager.poll(state, "31Dec96 9:00am")
        assert result.root == "answer"
        assert len(list(result.children("answer", "restaurant"))) == 1
        assert source.now == parse_timestamp("31Dec96 9:00am")

    def test_unknown_wrapper(self):
        with pytest.raises(QSSError):
            QueryManager().wrapper("missing")


class TestDOEMManagerStrategies:
    """Both space strategies must produce identical DOEM histories."""

    def _run_polls(self, manager: DOEMManager):
        snapshots = [small_db(["Janta"]),
                     small_db(["Janta", "Hakata"]),
                     small_db(["Hakata"])]
        times = ["30Dec96", "31Dec96", "1Jan97"]
        for when, snapshot in zip(times, snapshots):
            wrapped = OEMDatabase(root="answer")
            mapping = {snapshot.root: "answer"}
            for node in snapshot.nodes():
                if node != snapshot.root:
                    mapping[node] = wrapped.create_node(node, snapshot.value(node))
            for arc in snapshot.arcs():
                wrapped.add_arc(mapping[arc.source], arc.label,
                                mapping[arc.target])
            manager.incorporate("S", when, wrapped)
        return manager.doem("S")

    def test_cached_and_recomputed_agree(self):
        cached = self._run_polls(DOEMManager(cache_previous_result=True))
        recomputed = self._run_polls(DOEMManager(cache_previous_result=False))
        from repro.doem.snapshot import current_snapshot
        assert current_snapshot(cached).isomorphic_to(
            current_snapshot(recomputed))
        assert cached.annotation_count() == recomputed.annotation_count()

    def test_first_poll_creates_everything(self):
        manager = DOEMManager()
        doem = self._run_polls(manager)
        # Janta was created at t1 and deleted at t3; Hakata created at t2.
        cre_times = sorted(str(t) for _, annotations in doem.annotated_nodes()
                           for t in [a.at for a in annotations
                                     if type(a).__name__ == "Cre"])
        assert len(cre_times) >= 2

    def test_state_size_accounting(self):
        manager = DOEMManager(cache_previous_result=True)
        self._run_polls(manager)
        sizes = manager.state_size("S")
        assert sizes["doem_nodes"] > 0
        assert sizes["cached_nodes"] > 0
        lean = DOEMManager(cache_previous_result=False)
        self._run_polls(lean)
        assert lean.state_size("S")["cached_nodes"] == 0

    def test_identifiers_never_reused(self):
        manager = DOEMManager()
        self._run_polls(manager)
        doem = manager.doem("S")
        # every node id is distinct by construction; the reserved set must
        # cover every id ever created.
        assert set(doem.graph.nodes()) <= manager._all_ids["S"]

    def test_drop(self):
        manager = DOEMManager()
        self._run_polls(manager)
        manager.drop("S")
        assert manager.doem("S").annotation_count() == 0

    def test_diff_stats_recorded(self):
        manager = DOEMManager()
        self._run_polls(manager)
        assert manager.last_diff_stats["S"].total > 0
