"""QSS server observability: slow-poll log, metrics dump, poll spans."""

import pytest

from repro import (
    COMPLEX,
    OEMDatabase,
    QSSServer,
    Subscription,
    Wrapper,
    parse_timestamp,
)
from repro.errors import QSSError
from repro.obs.trace import get_tracer
from repro.qss import SlowPollRecord
from repro.timestamps import Timestamp


class ScriptedGuideSource:
    """Example 2.2's timeline: Hakata appears on 1Jan97."""

    def __init__(self):
        self.now: Timestamp | None = None

    def advance(self, when):
        self.now = parse_timestamp(when)

    def export(self):
        db = OEMDatabase(root="guide")
        counter = [0]

        def atom(value):
            counter[0] += 1
            return db.create_node(f"a{counter[0]}", value)

        names = ["Bangkok Cuisine", "Janta"]
        if self.now is not None and self.now >= parse_timestamp("1Jan97"):
            names.append("Hakata")
        for index, name in enumerate(names):
            node = db.create_node(f"r{index}", COMPLEX)
            db.add_arc("guide", "restaurant", node)
            db.add_arc(node, "name", atom(name))
        return db


def subscription():
    return Subscription.from_definitions(
        name="Restaurants", frequency="every night at 11:30pm",
        polling="define polling query Restaurants as "
                "select guide.restaurant",
        filter_="define filter query NewRestaurants as "
                "select Restaurants.restaurant<cre at T> where T > t[-1]")


def make_server(**kwargs):
    server = QSSServer(start="30Dec96 10:00am", deliver_empty=True, **kwargs)
    server.register_wrapper("guide", Wrapper(ScriptedGuideSource(),
                                             name="guide"))
    return server


@pytest.fixture(autouse=True)
def tracer_off():
    tracer = get_tracer()
    tracer.enabled = False
    tracer.clear()
    yield
    tracer.enabled = False
    tracer.clear()


class TestSlowPollLog:
    def test_threshold_zero_logs_every_poll(self):
        """The smoke test the CI job relies on: at threshold 0 every poll
        is 'slow', so the log must fire on the very first poll."""
        server = make_server(slow_poll_threshold=0.0)
        server.subscribe(subscription(), "guide")
        notifications = server.run_until("2Jan97")
        assert len(notifications) == 3
        assert len(server.slow_poll_log) == 3
        record = server.slow_poll_log[0]
        assert isinstance(record, SlowPollRecord)
        assert record.subscription == "Restaurants"
        assert record.polling_time == parse_timestamp("30Dec96 11:30pm")
        assert record.seconds >= 0.0
        assert "SLOW Restaurants" in str(record)

    def test_disabled_by_default(self):
        server = make_server()
        server.subscribe(subscription(), "guide")
        server.run_until("2Jan97")
        assert server.slow_poll_log == []

    def test_unreachable_threshold_stays_quiet(self):
        server = make_server(slow_poll_threshold=3600.0)
        server.subscribe(subscription(), "guide")
        server.run_until("2Jan97")
        assert server.slow_poll_log == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(QSSError, match="slow_poll_threshold"):
            QSSServer(slow_poll_threshold=-0.5)

    def test_threshold_zero_logs_every_poll_subscribed(self):
        server = make_server(slow_poll_threshold=0.0)
        server.subscribe(subscription(), "guide")
        server.run_until("31Dec96")
        assert len(server.slow_poll_log) == 1


class TestMetrics:
    def test_poll_counters_and_histogram(self):
        server = make_server()
        server.subscribe(subscription(), "guide")
        server.run_until("2Jan97")
        assert server._metrics["polls"].value == 3
        assert server._metrics["notifications"].value == 3
        assert server._metrics["errors"].value == 0
        histogram = server._metrics.histogram("poll_seconds")
        assert histogram.count == 3
        assert histogram.total > 0.0

    def test_metrics_text_dump(self):
        import re

        def series(text, name):
            return int(re.search(rf"^{name} (\d+)$", text, re.M).group(1))

        server = make_server(slow_poll_threshold=0.0)
        server.subscribe(subscription(), "guide")
        # The dump sums every live qss group in the process (that is the
        # point of family summation), so assert on the delta this
        # server's poll adds, not on absolute values.
        before = server.metrics_text(prefix="qss")
        server.run_until("31Dec96")
        after = server.metrics_text(prefix="qss")
        assert series(after, "qss_polls") - \
            series(before, "qss_polls") == 1
        assert series(after, "qss_slow_polls") - \
            series(before, "qss_slow_polls") == 1
        assert 'qss_poll_seconds_bucket{le="+Inf"}' in after
        assert series(after, "qss_poll_seconds_count") - \
            series(before, "qss_poll_seconds_count") == 1

    def test_notification_carries_elapsed(self):
        server = make_server()
        server.subscribe(subscription(), "guide")
        (notification,) = server.run_until("31Dec96")
        assert notification.elapsed is not None
        assert notification.elapsed >= 0.0


class TestSlowQueryEnvFallback:
    """One env var drives every slow-query surface: with no explicit
    ``slow_poll_threshold`` the server picks up ``REPRO_SLOW_QUERY_MS``
    -- the same variable the obs query log's slow capture honors."""

    def test_env_supplies_the_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "0")
        server = make_server()
        assert server.slow_poll_threshold == 0.0
        server.subscribe(subscription(), "guide")
        server.run_until("31Dec96")
        assert len(server.slow_poll_log) == 1

    def test_explicit_threshold_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "0")
        server = make_server(slow_poll_threshold=3600.0)
        server.subscribe(subscription(), "guide")
        server.run_until("31Dec96")
        assert server.slow_poll_log == []

    def test_unset_env_keeps_log_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        server = make_server()
        assert server.slow_poll_threshold is None


class TestFilterQueryAttribution:
    def test_filter_runs_are_attributed_in_the_query_log(self):
        """Each subscription's filter run lands in the process query log
        tagged with the subscription name and polling time."""
        from repro.obs.querylog import query_log
        query_log().reset()   # the global ring may arrive full (maxlen)
        server = make_server()
        server.subscribe(subscription(), "guide")
        before = len(query_log())
        server.run_until("31Dec96")
        attributed = [record for record in query_log().recent()
                      if record.attribution.get("subscription") ==
                      "Restaurants"]
        assert len(query_log()) > before
        assert attributed, "filter run should carry attribution"
        assert attributed[-1].attribution["poll_time"] == \
            str(parse_timestamp("30Dec96 11:30pm"))


class TestPollSpans:
    def test_poll_span_has_phase_children(self):
        server = make_server()
        server.subscribe(subscription(), "guide")
        tracer = get_tracer()
        with tracer.capture() as capture:
            server.run_until("31Dec96")
        poll = capture.find("qss.poll")
        assert poll is not None
        assert poll.attrs["subscription"] == "Restaurants"
        assert poll.attrs["at"] == str(parse_timestamp("30Dec96 11:30pm"))
        child_names = [child.name for child in poll.children]
        for phase in ("qss.poll.source", "qss.poll.incorporate",
                      "qss.filter", "qss.package"):
            assert phase in child_names

    def test_no_spans_when_tracing_disabled(self):
        server = make_server()
        server.subscribe(subscription(), "guide")
        server.run_until("31Dec96")
        assert get_tracer().roots == []
