"""Tests for the index-accelerated Chorel engine (Section 7 future work).

The contract: :class:`IndexedChorelEngine` returns exactly what the
normal engine returns, using the annotation index when the query shape
allows and falling back otherwise.
"""

import pytest

from repro import (
    ChorelEngine,
    IndexedChorelEngine,
    build_doem,
    random_database,
    random_history,
)
from tests.conftest import make_guide_db, make_guide_history


@pytest.fixture
def engines(guide_doem):
    return (ChorelEngine(guide_doem, name="guide"),
            IndexedChorelEngine(guide_doem, name="guide"))


INDEXABLE = [
    "select guide.<add at T>restaurant where T < 4Jan97",
    "select guide.<add>restaurant",
    "select R, T from guide.<add at T>restaurant R",
    "select guide.restaurant.comment<cre at T> where T > 3Jan97",
    "select guide.restaurant.comment<cre at T> "
    "where T > 3Jan97 and T <= 5Jan97",
    "select T, OV, NV from guide.restaurant.price<upd at T from OV to NV> "
    "where T >= 1Jan97",
    "select P, T from guide.restaurant.<rem at T>parking P",
    "select guide.<add at T>restaurant where T = 1Jan97",
    "select guide.<add at T>restaurant where 1Jan97 <= T",
    "select guide.<add at 5Jan97>restaurant",        # literal pin: [t, t]
    "select guide.<rem at 8Jan97>restaurant",        # literal pin, no hits
]

FALLBACK = [
    'select N from guide.restaurant R, R.name N '
    'where R.<add at T>comment = "need info"',
    "select guide.restaurant where guide.restaurant.price < 20.5",
    "select guide.#.comment<cre at T>",              # wildcard prefix
    "select guide.restaurant.price<at 2Jan97> P "
    .replace("select guide", "select P from guide"),  # virtual annotation
]


class TestEquivalence:
    @pytest.mark.parametrize("query", INDEXABLE)
    def test_indexed_matches_normal(self, engines, query):
        normal, indexed = engines
        expected = sorted(map(str, normal.run(query)))
        actual = sorted(map(str, indexed.run(query)))
        assert actual == expected
        assert indexed.last_plan is not None, "should have used the index"

    @pytest.mark.parametrize("query", FALLBACK)
    def test_fallback_matches_normal(self, engines, query):
        normal, indexed = engines
        expected = sorted(map(str, normal.run(query)))
        actual = sorted(map(str, indexed.run(query)))
        assert actual == expected
        assert indexed.last_plan is None, "should have fallen back"

    def test_contradictory_interval_is_empty(self, engines):
        _, indexed = engines
        result = indexed.run("select guide.<add at T>restaurant "
                             "where T = 1Jan97 and T = 5Jan97")
        assert len(result) == 0
        assert indexed.last_plan is not None

    def test_randomized_equivalence(self):
        queries = [
            "select root.<add at T>item where T >= 2Jan97",
            "select root.item.name<cre at T>",
            "select X, T from root.item.<rem at T>link X",
            "select T, OV, NV from root.item.price"
            "<upd at T from OV to NV> where T > 1Jan97",
        ]
        for seed in range(5):
            db = random_database(seed=seed + 500, nodes=25)
            history = random_history(db, seed=seed + 500, steps=4)
            doem = build_doem(db, history)
            normal = ChorelEngine(doem, name="root")
            indexed = IndexedChorelEngine(doem, name="root")
            for query in queries:
                assert sorted(map(str, normal.run(query))) == \
                    sorted(map(str, indexed.run(query))), (seed, query)


class TestPlanDetails:
    def test_interval_folding(self, engines):
        _, indexed = engines
        indexed.run("select guide.restaurant.comment<cre at T> "
                    "where T > 3Jan97 and T <= 5Jan97")
        plan = indexed.last_plan
        assert not plan.include_low and plan.include_high
        assert "3Jan97" in plan.describe() and "5Jan97" in plan.describe()

    def test_timevar_bounds_resolve_via_polling_times(self, guide_doem):
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        indexed.set_polling_times({0: "6Jan97", -1: "2Jan97"})
        result = indexed.run("select guide.restaurant.comment<cre at T> "
                             "where T > t[-1] and T <= t[0]")
        assert indexed.last_plan is not None
        assert len(result) == 1  # "need info", created 5Jan97

    def test_unresolvable_timevar_falls_back(self, engines, guide_doem):
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        # no polling times set -> the bound is not a literal -> fallback,
        # which then raises like the normal engine does.
        from repro import EvaluationError
        with pytest.raises(EvaluationError):
            indexed.run("select guide.restaurant.comment<cre at T> "
                        "where T > t[-1]")

    def test_attached_index_follows_folded_changes(self, guide_doem):
        """The TimestampIndex is attached: no refresh_index() needed."""
        from repro.doem.build import apply_change_set
        from repro.oem.changes import UpdNode
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        before = indexed.run(
            "select T, NV from guide.restaurant.price<upd at T to NV> "
            "where T > 1Jan97")
        assert len(before) == 0
        apply_change_set(guide_doem, "9Jan97", [UpdNode("n1", 25)])
        after = indexed.run(
            "select T, NV from guide.restaurant.price<upd at T to NV> "
            "where T > 1Jan97")
        assert len(after) == 1

    def test_refresh_index_still_equivalent(self, guide_doem):
        """refresh_index() (full rebuild) must agree with the live index."""
        from repro.doem.build import apply_change_set
        from repro.oem.changes import UpdNode
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        apply_change_set(guide_doem, "9Jan97", [UpdNode("n1", 25)])
        live = indexed.index.between("upd")
        indexed.refresh_index()
        assert indexed.index.between("upd") == live

    def test_label_partition_narrow_scan(self, guide_doem):
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        indexed.run("select guide.<add at T>restaurant")
        # Only the restaurant-labelled add entries were visited, not the
        # name/comment adds the same history performed.
        assert indexed.index.stats.visited == 1
        assert indexed.index.count("add") > 1

    def test_pushdown_stats(self, engines):
        _, indexed = engines
        indexed.run("select guide.<add at T>restaurant")
        indexed.run("select guide.restaurant where "
                    "guide.restaurant.price < 20.5")
        assert indexed.stats.indexed_queries == 1
        assert indexed.stats.fallback_queries == 1
        assert indexed.stats.pushdown_rate == 0.5
        indexed.reset_counters()
        assert indexed.stats.total == 0
        assert indexed.annotation_visits == 0

    def test_reset_clears_every_counter_family(self, engines):
        """Reset symmetry: the indexed engine zeroes *all* its counter
        sources -- the view, the annotation index, the path index, and
        the pushdown split -- not just the base engine's view counter.
        """
        _, indexed = engines
        indexed.run("select guide.<add at T>restaurant")
        indexed.run("select guide.restaurant where "
                    "guide.restaurant.price < 20.5")
        assert indexed.index.stats.lookups > 0
        assert indexed.index.stats.visited > 0
        assert indexed.paths.stats.lookups > 0
        assert indexed.stats.total > 0
        assert indexed.annotation_visits > 0
        indexed.reset_counters()
        assert indexed.annotation_visits == 0
        assert indexed.view.annotation_visits == 0
        assert indexed.index.stats.lookups == 0
        assert indexed.index.stats.visited == 0
        assert indexed.paths.stats.lookups == 0
        assert indexed.stats.total == 0

    def test_reset_stats_alias(self, engines):
        """``reset_stats`` (the registry-era name) is ``reset_counters``
        on both engines, so either spelling fully resets either engine.
        """
        normal, indexed = engines
        query = "select T from guide.restaurant.price<upd at T>"
        normal.run(query)
        indexed.run(query)
        assert normal.annotation_visits > 0
        assert indexed.annotation_visits > 0
        normal.reset_stats()
        indexed.reset_stats()
        assert normal.annotation_visits == 0
        assert indexed.annotation_visits == 0
        assert indexed.index.stats.visited == 0

    def test_bindings_disable_fast_path(self, engines, guide_doem):
        _, indexed = engines
        result = indexed.run("select N from NEW.name N",
                             bindings={"NEW": "r1"})
        assert len(result) == 1
        assert indexed.last_plan is None

    def test_dead_final_arc_excluded_for_cre(self, guide_doem):
        """A created node whose incoming arc was later removed must not
        be found by `label<cre at T>` -- matching the native engine."""
        from repro.doem.build import apply_change_set
        from repro.oem.changes import RemArc, AddArc
        # keep n5 alive through another arc, then remove its comment arc
        apply_change_set(guide_doem, "9Jan97",
                         [AddArc("guide", "note", "n5")])
        apply_change_set(guide_doem, "10Jan97",
                         [RemArc("n2", "comment", "n5")])
        normal = ChorelEngine(guide_doem, name="guide")
        indexed = IndexedChorelEngine(guide_doem, name="guide")
        query = "select guide.restaurant.comment<cre at T>"
        assert sorted(map(str, normal.run(query))) == \
            sorted(map(str, indexed.run(query))) == []
