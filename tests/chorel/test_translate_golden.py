"""Golden-file tests for the Chorel -> Lorel translation (Section 5.2).

One golden per annotation form -- ``<cre at T>``, ``<upd at T from OV to
NV>``, ``<add at T>``, ``<rem at T>`` -- pinned so a translator change
that rewrites the emitted Lorel shows up as a reviewable diff, not a
silent behavior shift.  The Example 5.1 artifact
(``benchmarks/artifacts/ex5_1_translation.txt``) is checked the same way:
the committed artifact must match what the live translator emits today.

To update a golden intentionally, delete it and re-run with
``REGEN_GOLDENS=1``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import ChorelEngine, TranslatingChorelEngine, build_doem
from tests.conftest import make_guide_db, make_guide_history

GOLDENS = Path(__file__).resolve().parent / "goldens"
ARTIFACTS = Path(__file__).resolve().parent.parent.parent \
    / "benchmarks" / "artifacts"

# One query per annotation form of Section 4.2.1 / 5.2.
FORM_QUERIES = {
    "cre_at": "select C, T from guide.restaurant.comment<cre at T> C",
    "upd_at_from_to": "select T, OV, NV from guide.restaurant.price"
                      "<upd at T from OV to NV> where T >= 1Jan97",
    "add_at": "select R, T from guide.<add at T>restaurant R",
    "rem_at": "select P, T from guide.restaurant.<rem at T>parking P "
              "where T > 5Jan97",
}

EX51_QUERY = ('select N from guide.restaurant R, R.name N '
              'where R.<add at T>price = "moderate" and T >= 1Jan97')


@pytest.fixture(scope="module")
def doem():
    return build_doem(make_guide_db(), make_guide_history())


def render(chorel: str, engine: TranslatingChorelEngine) -> str:
    translation = engine.translate(chorel)
    return f"Chorel:\n{chorel}\n\nLorel translation:\n{translation.text()}\n"


@pytest.mark.parametrize("form", sorted(FORM_QUERIES))
def test_translation_matches_golden(form, doem):
    engine = TranslatingChorelEngine(doem, name="guide")
    actual = render(FORM_QUERIES[form], engine)
    path = GOLDENS / f"{form}.txt"
    if os.environ.get("REGEN_GOLDENS") and not path.exists():
        path.write_text(actual, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, \
        f"translation drift for <{form}>; diff against {path}"


@pytest.mark.parametrize("form", sorted(FORM_QUERIES))
def test_golden_queries_evaluate_identically(form, doem):
    """The pinned queries are not just pretty text: both backends agree."""
    native = ChorelEngine(doem, name="guide")
    translating = TranslatingChorelEngine(doem, name="guide")
    query = FORM_QUERIES[form]
    assert sorted(map(str, native.run(query))) == \
        sorted(map(str, translating.run(query)))


def test_ex51_artifact_matches_live_translation(doem):
    """The committed benchmark artifact equals today's translator output."""
    engine = TranslatingChorelEngine(doem, name="guide")
    translation = engine.translate(EX51_QUERY)
    expected = (f"Chorel:\n{EX51_QUERY}\n\n"
                f"Lorel translation:\n{translation.text()}\n")
    artifact = (ARTIFACTS / "ex5_1_translation.txt").read_text(
        encoding="utf-8")
    assert artifact == expected


def test_every_annotation_form_has_a_golden():
    assert {path.stem for path in GOLDENS.glob("*.txt")} \
        == set(FORM_QUERIES), \
        "keep one golden file per annotation form"
