"""Unit tests for translation internals (the _Translator chain builder)."""

import pytest

from repro import TranslatingChorelEngine, parse_query
from repro.chorel.translate import _Translator, _rename_var
from repro.lorel.ast import PathExpr, PathStep, AnnotationExpr
from repro.lorel.eval import Evaluator
from repro.lorel.views import OEMView


class TestTranslateChain:
    def _chain(self, path_text):
        query = parse_query(f"select x from {path_text} V")
        path = query.from_items[0].path
        translator = _Translator()
        binders, conditions, final = translator.translate_chain(path)
        return translator, binders, conditions, final

    def test_plain_path(self):
        translator, binders, conditions, final = self._chain("g.a.b")
        assert [str(p) for _, p in binders] == ["g.a", f"{binders[0][0]}.b"]
        assert conditions == []
        assert final == binders[-1][0]
        assert final in translator.object_vars

    def test_add_annotation_expands_history(self):
        translator, binders, _, final = self._chain("g.<add at T>item")
        paths = [str(p) for _, p in binders]
        assert paths[0] == "g.&item-history"
        assert any(".&add" in p for p in paths)
        assert any(".&target" in p for p in paths)
        assert "T" in translator.scalar_vars
        assert final in translator.object_vars

    def test_upd_annotation_expands_record(self):
        translator, binders, _, final = self._chain(
            "g.price<upd at T from OV to NV>")
        joined = " ".join(str(p) for _, p in binders)
        for piece in ("&upd", "&time", "&ov", "&nv"):
            assert piece in joined
        assert {"T", "OV", "NV"} <= translator.scalar_vars

    def test_literal_pin_produces_condition(self):
        translator, binders, conditions, _ = self._chain(
            "g.<add at 5Jan97>item")
        assert len(conditions) == 1
        assert "=" in str(conditions[0])

    def test_rename_var_rewrites_uses(self):
        binders = [("A", PathExpr("g", (PathStep("x"),))),
                   ("B", PathExpr("A", (PathStep("y"),)))]
        renamed = _rename_var(binders, "A", "R")
        assert renamed[0][0] == "R"
        assert renamed[1][1].start == "R"


class TestTranslationEndToEnd:
    def test_register_name_in_translating_engine(self, guide_doem):
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        engine.register_name("bangkok", "r1")
        result = engine.run("select N from bangkok.name N")
        assert len(result) == 1

    def test_last_translation_updated_per_query(self, guide_doem):
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        engine.run("select guide.<add>restaurant")
        first = engine.last_translation.text()
        engine.run("select guide.restaurant.comment<cre at T>")
        second = engine.last_translation.text()
        assert first != second
        assert "&cre" in second

    def test_translation_of_bare_path_existence(self, guide_doem):
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        result = engine.run(
            "select guide.restaurant where guide.restaurant.parking")
        assert len(result) == 1  # only Bangkok still has live parking

    def test_like_condition_gets_val_access(self, guide_doem):
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        translation = engine.translate(
            'select N from guide.restaurant.name N where N like "%a%"')
        assert ".&val like" in translation.text().replace("  ", " ")

    def test_scalar_unwrap_in_results(self, guide_doem):
        engine = TranslatingChorelEngine(guide_doem, name="guide")
        result = engine.run("select OV from guide.restaurant.price"
                            "<upd from OV>")
        assert result.first()["old-value"] == 10  # scalar, not an ObjectRef
