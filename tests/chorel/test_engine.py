"""Tests for the native Chorel engine: the paper's Examples 4.2-4.5.

Every query runs against the Figure 4 DOEM database (guide_doem).
"""

import pytest

from repro import ChorelEngine, EvaluationError, parse_timestamp

T1 = parse_timestamp("1Jan97")


@pytest.fixture
def engine(guide_doem):
    return ChorelEngine(guide_doem, name="guide")


class TestExample42:
    def test_newly_added_restaurants(self, engine):
        result = engine.run("select guide.<add>restaurant")
        assert [ref.node for ref in
                (row.scalar() for row in result)] == ["n2"]  # Hakata


class TestExample43:
    def test_added_before_jan4(self, engine):
        result = engine.run("select guide.<add at T>restaurant "
                            "where T < 4Jan97")
        assert [row.scalar().node for row in result] == ["n2"]

    def test_added_after_jan4_empty(self, engine):
        result = engine.run("select guide.<add at T>restaurant "
                            "where T > 4Jan97")
        assert len(result) == 0

    def test_time_variable_also_selectable(self, engine):
        result = engine.run("select R, T from guide.<add at T>restaurant R")
        row = result.first()
        assert row["restaurant"].node == "n2"
        assert row["add-time"] == T1


class TestExample44:
    QUERY = ("select N, T, NV "
             "from guide.restaurant.price<upd at T to NV>, "
             "guide.restaurant.name N "
             "where T >= 1Jan97 and NV > 15")

    def test_answer_object(self, engine, guide_doem):
        result = engine.run(self.QUERY)
        assert len(result) == 1
        row = result.first()
        assert guide_doem.graph.value(row["name"].node) == "Bangkok Cuisine"
        assert row["update-time"] == T1
        assert row["new-value"] == 20

    def test_default_labels_match_paper(self, engine):
        row = engine.run(self.QUERY).first()
        assert row.labels() == ["name", "update-time", "new-value"]

    def test_old_value_binding(self, engine):
        result = engine.run(
            "select OV from guide.restaurant.price<upd from OV>")
        assert result.first()["old-value"] == 10

    def test_upd_time_filter_excludes(self, engine):
        result = engine.run(
            "select NV from guide.restaurant.price<upd at T to NV> "
            "where T > 2Jan97")
        assert len(result) == 0


class TestExample45:
    def test_moderate_added_since_jan1(self, engine):
        # No price arc was ever *added* in the Figure 4 history.
        result = engine.run(
            'select N from guide.restaurant R, R.name N '
            'where R.<add at T>price = "moderate" and T >= 1Jan97')
        assert len(result) == 0

    def test_comment_added_since_jan1(self, engine, guide_doem):
        result = engine.run(
            'select N from guide.restaurant R, R.name N '
            'where R.<add at T>comment = "need info" and T >= 1Jan97')
        values = [guide_doem.graph.value(row.scalar().node) for row in result]
        assert values == ["Hakata"]


class TestRemAndCre:
    def test_rem_finds_removed_parking(self, engine):
        result = engine.run(
            "select R from guide.restaurant R where R.<rem at T>parking")
        assert [row.scalar().node for row in result] == ["r2"]  # Janta

    def test_rem_binds_target_and_time(self, engine):
        result = engine.run(
            "select P, T from guide.restaurant.<rem at T>parking P")
        row = result.first()
        assert row["parking"].node == "n7"
        assert row["remove-time"] == parse_timestamp("8Jan97")

    def test_cre_on_node(self, engine):
        result = engine.run("select guide.restaurant.comment<cre at T>")
        assert [row.scalar().node for row in result] == ["n5"]

    def test_cre_filter_by_time(self, engine):
        early = engine.run("select guide.restaurant.comment<cre at T> "
                           "where T < 3Jan97")
        assert len(early) == 0
        late = engine.run("select guide.restaurant.comment<cre at T> "
                          "where T > 3Jan97")
        assert len(late) == 1

    def test_unannotated_nodes_do_not_match_cre(self, engine):
        result = engine.run("select guide.restaurant.name<cre at T> "
                            "where T < 4Jan97")
        # only Hakata's name node was created (n3, at t1)
        assert [row.scalar().node for row in result] == ["n3"]

    def test_literal_time_pin(self, engine):
        result = engine.run("select guide.<add at 1Jan97>restaurant")
        assert len(result) == 1
        assert len(engine.run("select guide.<add at 2Jan97>restaurant")) == 0


class TestCurrentSnapshotDefault:
    """Section 4.2.1: a plain Lorel query over DOEM sees the current state."""

    def test_plain_query_sees_current_values(self, engine):
        result = engine.run(
            "select guide.restaurant where guide.restaurant.price = 20")
        assert [row.scalar().node for row in result] == ["r1"]

    def test_plain_query_does_not_see_removed_arcs(self, engine):
        result = engine.run(
            "select P from guide.restaurant.parking P")
        # only Bangkok still has parking; Janta's arc is rem-annotated.
        assert len(result) == 1

    def test_agrees_with_lorel_over_current_snapshot(self, guide_doem,
                                                     figure3_db):
        from repro import LorelEngine
        chorel = ChorelEngine(guide_doem, name="guide")
        lorel = LorelEngine(figure3_db, name="guide")
        for query in [
            "select guide.restaurant",
            "select N from guide.restaurant.name N",
            "select guide.restaurant where guide.restaurant.price < 20.5",
            "select X from guide.# X where X like '%Lytton%'",
        ]:
            native = sorted(str(row) for row in chorel.run(query))
            plain = sorted(str(row) for row in lorel.run(query))
            assert native == plain, query


class TestVirtualAnnotations:
    """Section 4.2.2: <at T> on nodes and arcs (native engine only)."""

    def test_value_as_of_time(self, engine):
        result = engine.run(
            "select P from guide.restaurant.price<at 31Dec96> P")
        assert result.first().scalar().node == "n1"
        assert engine.doem.value_at("n1", "31Dec96") == 10

    def test_comparison_uses_value_at_time(self, engine):
        before = engine.run(
            "select R from guide.restaurant R, R.price<at 31Dec96> P "
            "where P = 10")
        assert [row.scalar().node for row in before] == ["r1"]
        after = engine.run(
            "select R from guide.restaurant R, R.price<at 2Jan97> P "
            "where P = 10")
        assert len(after) == 0

    def test_arc_existence_at_time(self, engine):
        before = engine.run(
            "select R from guide.restaurant R, R.<at 2Jan97>parking P")
        assert sorted(row.scalar().node for row in before) == ["r1", "r2"]
        after = engine.run(
            "select R from guide.restaurant R, R.<at 9Jan97>parking P")
        assert sorted(row.scalar().node for row in after) == ["r1"]

    def test_restaurants_at_time(self, engine):
        before = engine.run("select guide.<at 31Dec96>restaurant")
        assert len(before) == 2  # no Hakata yet
        after = engine.run("select guide.<at 2Jan97>restaurant")
        assert len(after) == 3

    def test_unbound_at_variable_rejected(self, engine):
        with pytest.raises(EvaluationError):
            engine.run("select R from guide.<at T>restaurant R")


class TestTimeVariables:
    def test_polling_times_context(self, guide_doem):
        engine = ChorelEngine(guide_doem, name="guide")
        engine.set_polling_times({0: "5Jan97", -1: "2Jan97"})
        result = engine.run(
            "select guide.restaurant.comment<cre at T> where T > t[-1]")
        assert len(result) == 1
        result2 = engine.run(
            "select guide.restaurant.comment<cre at T> where T > t[0]")
        assert len(result2) == 0

    def test_missing_context_rejected(self, engine):
        with pytest.raises(EvaluationError):
            engine.run("select guide.restaurant.comment<cre at T> "
                       "where T > t[-1]")
