"""Tests for the Chorel -> Lorel translation backend (Section 5.2).

The backbone invariant: for every supported query, the translation-based
engine returns the same rows as the native engine.
"""

import pytest

from repro import (
    ChorelEngine,
    TranslatingChorelEngine,
    TranslationError,
    build_doem,
    random_database,
    random_history,
)
from repro.lorel.parser import parse_query


@pytest.fixture
def engines(guide_doem):
    return (ChorelEngine(guide_doem, name="guide"),
            TranslatingChorelEngine(guide_doem, name="guide"))


EQUIVALENCE_QUERIES = [
    # plain Lorel over the current snapshot
    "select guide.restaurant",
    "select N from guide.restaurant.name N",
    "select guide.restaurant where guide.restaurant.price < 20.5",
    'select guide.restaurant where guide.restaurant.price = "moderate"',
    "select P from guide.restaurant.parking P",
    'select N from guide.restaurant.name N where N like "%a%"',
    "select guide.restaurant where not guide.restaurant.price",
    "select X from guide.# X where X = 20",
    "select X from guide.restaurant.price% X",
    # annotation queries (Examples 4.2-4.5 and friends)
    "select guide.<add>restaurant",
    "select guide.<add at T>restaurant where T < 4Jan97",
    "select R, T from guide.<add at T>restaurant R",
    "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
    "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
    'select N from guide.restaurant R, R.name N '
    'where R.<add at T>price = "moderate" and T >= 1Jan97',
    'select N from guide.restaurant R, R.name N '
    'where R.<add at T>comment = "need info" and T >= 1Jan97',
    "select R from guide.restaurant R where R.<rem at T>parking",
    "select P, T from guide.restaurant.<rem at T>parking P",
    "select guide.restaurant.comment<cre at T>",
    "select guide.restaurant.comment<cre at T> where T > 3Jan97",
    "select OV from guide.restaurant.price<upd from OV>",
    "select guide.<add at 1Jan97>restaurant",
    "select guide.<add at 2Jan97>restaurant",
    # boolean structure around annotations
    "select R from guide.restaurant R "
    "where R.<rem at T>parking or R.price = 20",
    "select R from guide.restaurant R "
    "where not R.<rem at T>parking",
    "select R from guide.restaurant R, R.name<cre at T> N "
    "where T < 4Jan97 and N = 'Hakata'",
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_same_rows(self, engines, query):
        native, translating = engines
        native_rows = sorted(str(row) for row in native.run(query))
        translated_rows = sorted(str(row) for row in translating.run(query))
        assert native_rows == translated_rows, \
            translating.last_translation.text()

    def test_random_histories_equivalence(self):
        queries = [
            "select root.<add at T>item where T >= 2Jan97",
            "select root.item.name<cre at T>",
            "select X, OV, NV from root.#.price<upd at T from OV to NV> X",
            "select R from root.item R where R.<rem at T>link",
        ]
        for seed in range(4):
            db = random_database(seed=seed, nodes=20)
            history = random_history(db, seed=seed, steps=3)
            doem = build_doem(db, history)
            native = ChorelEngine(doem, name="root")
            translating = TranslatingChorelEngine(doem, name="root")
            for query in queries:
                native_rows = sorted(str(row) for row in native.run(query))
                translated_rows = sorted(str(row)
                                         for row in translating.run(query))
                assert native_rows == translated_rows, (seed, query)


class TestTranslationOutput:
    def test_example51_shape(self, engines):
        """The translated text of Example 4.5 matches Example 5.1's shape."""
        _, translating = engines
        translation = translating.translate(
            'select N from guide.restaurant R, R.name N '
            'where R.<add at T>price = "moderate" and T >= 1Jan97')
        text = translation.text()
        assert "&price-history" in text
        assert "&add" in text
        assert "&target" in text
        assert "&val" in text
        assert "exists" in text

    def test_updfun_expansion(self, engines):
        _, translating = engines
        translation = translating.translate(
            "select T, OV, NV from guide.restaurant.price"
            "<upd at T from OV to NV>")
        text = translation.text()
        for piece in ("&upd", "&time", "&ov", "&nv"):
            assert piece in text, text

    def test_crefun_expansion(self, engines):
        _, translating = engines
        translation = translating.translate(
            "select guide.restaurant.comment<cre at T>")
        assert "&cre" in translation.text()

    def test_translation_is_plain_lorel(self, engines):
        """Every translated query must parse in the Lorel-only dialect."""
        _, translating = engines
        for query in EQUIVALENCE_QUERIES:
            translation = translating.translate(query)
            reparsed = parse_query(translation.text(),
                                   allow_annotations=False)
            assert reparsed is not None

    def test_value_access_rewrite(self, engines):
        """Predicates on object variables gain .&val (complex-safe)."""
        _, translating = engines
        translation = translating.translate(
            "select R from guide.restaurant R where R.price = 20")
        assert ".&val" in translation.text()

    def test_object_select_not_rewritten(self, engines):
        """Selecting an object variable is NOT a value access (Sec. 5.2)."""
        _, translating = engines
        translation = translating.translate(
            "select R from guide.restaurant R")
        select_clause = translation.text().splitlines()[0]
        assert "&val" not in select_clause

    def test_virtual_annotations_rejected(self, engines):
        _, translating = engines
        with pytest.raises(TranslationError):
            translating.run(
                "select P from guide.restaurant.price<at 31Dec96> P")

    def test_annotations_on_patterns_rejected(self, engines):
        _, translating = engines
        with pytest.raises(TranslationError):
            translating.run("select guide.<add>restau%")


class TestTimeVariables:
    def test_polling_times_in_translated_backend(self, guide_doem):
        translating = TranslatingChorelEngine(guide_doem, name="guide")
        translating.set_polling_times({0: "5Jan97", -1: "2Jan97"})
        result = translating.run(
            "select guide.restaurant.comment<cre at T> where T > t[-1]")
        assert len(result) == 1
