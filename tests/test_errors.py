"""Tests for the exception hierarchy: one base, meaningful subtrees."""

import pytest

import repro
from repro.errors import (
    DiffError,
    DOEMError,
    EncodingError,
    EvaluationError,
    FrequencyError,
    InfeasibleDOEMError,
    InvalidChangeError,
    InvalidHistoryError,
    LexError,
    OEMError,
    ParseError,
    QSSError,
    QueryError,
    ReproError,
    SerializationError,
    SubscriptionError,
    TimestampError,
    TranslationError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for error_type in (OEMError, DOEMError, QueryError, QSSError,
                           TimestampError, DiffError, SerializationError):
            assert issubclass(error_type, ReproError)

    def test_oem_subtree(self):
        for error_type in (InvalidChangeError, InvalidHistoryError):
            assert issubclass(error_type, OEMError)

    def test_doem_subtree(self):
        for error_type in (InfeasibleDOEMError, EncodingError):
            assert issubclass(error_type, DOEMError)

    def test_query_subtree(self):
        for error_type in (LexError, ParseError, EvaluationError,
                           TranslationError):
            assert issubclass(error_type, QueryError)

    def test_qss_subtree(self):
        for error_type in (FrequencyError, SubscriptionError):
            assert issubclass(error_type, QSSError)

    def test_one_catch_all_suffices(self):
        """A caller can wrap any library call in `except ReproError`."""
        from repro import LorelEngine, OEMDatabase, parse_timestamp
        db = OEMDatabase(root="r")
        failures = 0
        for action in (
            lambda: parse_timestamp("gibberish"),
            lambda: db.create_node("r", 1),
            lambda: LorelEngine(db).run("select select"),
            lambda: LorelEngine(db).run("select nosuch.thing"),
            lambda: repro.loads("not oem"),
        ):
            try:
                action()
            except ReproError:
                failures += 1
        assert failures == 5


class TestErrorMessages:
    def test_lex_error_carries_offset(self):
        from repro.lorel.lexer import tokenize
        try:
            tokenize("select ^")
        except LexError as error:
            assert error.position == 7
            assert "offset 7" in str(error)

    def test_parse_error_carries_offset(self):
        from repro import parse_query
        try:
            parse_query("select a extra junk")
        except ParseError as error:
            assert error.position is not None

    def test_serialization_error_location(self):
        error = SerializationError("bad", line=3, column=9)
        assert "line 3" in str(error) and "column 9" in str(error)

    def test_unknown_node_names_the_node(self):
        from repro import OEMDatabase
        from repro.errors import UnknownNodeError
        db = OEMDatabase(root="r")
        with pytest.raises(UnknownNodeError) as exc_info:
            db.value("ghost")
        assert "ghost" in str(exc_info.value)
        assert exc_info.value.node_id == "ghost"

    def test_all_public_errors_are_exported(self):
        for name in ("ReproError", "OEMError", "QueryError", "QSSError",
                     "ParseError", "EvaluationError", "TimestampError"):
            assert hasattr(repro, name)
