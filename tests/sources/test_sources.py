"""Tests for the simulated autonomous sources."""

import pytest

from repro import (
    COMPLEX,
    LibrarySource,
    RestaurantGuideSource,
    Source,
    StaticSource,
    parse_timestamp,
)
from repro.sources.base import scramble_ids
from tests.conftest import make_guide_db


class TestScrambleIds:
    def test_structure_preserved(self):
        db = make_guide_db()
        scrambled = scramble_ids(db, salt=1)
        assert db.isomorphic_to(scrambled)

    def test_identifiers_differ(self):
        db = make_guide_db()
        scrambled = scramble_ids(db, salt=1)
        shared = set(db.nodes()) & set(scrambled.nodes())
        assert shared == {db.root}

    def test_salt_varies_ids(self):
        db = make_guide_db()
        a = scramble_ids(db, salt=1)
        b = scramble_ids(db, salt=2)
        assert set(a.nodes()) & set(b.nodes()) == {db.root}


class TestStaticSource:
    def test_protocol_conformance(self):
        source = StaticSource(make_guide_db())
        assert isinstance(source, Source)

    def test_never_changes_structurally(self):
        source = StaticSource(make_guide_db())
        source.advance("1Jan97")
        first = source.export()
        source.advance("1Feb97")
        second = source.export()
        assert first.isomorphic_to(second)

    def test_exports_scramble_by_default(self):
        source = StaticSource(make_guide_db())
        a, b = source.export(), source.export()
        assert set(a.nodes()) & set(b.nodes()) == {a.root}

    def test_stable_ids_mode(self):
        source = StaticSource(make_guide_db(), stable_ids=True)
        assert source.export().same_as(source.export())


class TestRestaurantGuideSource:
    def test_deterministic(self):
        a = RestaurantGuideSource(seed=5, stable_ids=True)
        b = RestaurantGuideSource(seed=5, stable_ids=True)
        a.advance("10Dec96")
        b.advance("10Dec96")
        assert a.export().same_as(b.export())

    def test_export_is_valid_oem(self):
        source = RestaurantGuideSource(seed=5)
        source.export().check()

    def test_heterogeneity_like_figure2(self):
        """Prices mix ints and strings; addresses mix flat and structured."""
        source = RestaurantGuideSource(seed=1, initial_restaurants=20,
                                       stable_ids=True)
        db = source.export()
        price_types = set()
        address_complex = set()
        for restaurant in db.children(db.root, "restaurant"):
            for price in db.children(restaurant, "price"):
                price_types.add(type(db.value(price)).__name__)
            for address in db.children(restaurant, "address"):
                address_complex.add(db.is_complex(address))
        assert price_types == {"int", "str"}
        assert address_complex == {True, False}

    def test_shared_parking_and_cycles(self):
        source = RestaurantGuideSource(seed=2, initial_restaurants=20,
                                       stable_ids=True)
        db = source.export()
        back_arcs = [arc for arc in db.arcs() if arc.label == "nearby-eats"]
        assert back_arcs, "expected nearby-eats cycles"

    def test_evolution_changes_data(self):
        source = RestaurantGuideSource(seed=3, events_per_day=5.0,
                                       stable_ids=True)
        before = source.export()
        source.advance("15Dec96")
        after = source.export()
        assert not before.isomorphic_to(after)
        assert source.event_log

    def test_advance_is_monotone(self):
        source = RestaurantGuideSource(seed=3)
        source.advance("15Dec96")
        source.advance("10Dec96")  # going back is a no-op
        assert source.now == parse_timestamp("15Dec96")

    def test_render_html(self):
        source = RestaurantGuideSource(seed=4)
        page = source.render_html()
        assert page.startswith("<html>")
        assert "<li>" in page and "Restaurant Guide" in page

    def test_names_unique(self):
        source = RestaurantGuideSource(seed=6, initial_restaurants=30)
        names = [r.name for r in source.restaurants.values()]
        assert len(names) == len(set(names))


class TestLibrarySource:
    def test_catalog_shape(self):
        source = LibrarySource(seed=1, books=5, stable_ids=True)
        db = source.export()
        books = list(db.children(db.root, "book"))
        assert len(books) == 5
        for book in books:
            labels = sorted(db.out_labels(book))
            assert labels == ["author", "status", "title"]

    def test_status_values(self):
        source = LibrarySource(seed=1, books=5, stable_ids=True)
        db = source.export()
        statuses = {db.value(status)
                    for book in db.children(db.root, "book")
                    for status in db.children(book, "status")}
        assert statuses <= {"in", "out"}

    def test_circulation_happens(self):
        source = LibrarySource(seed=2, books=8, events_per_day=10.0)
        source.advance("15Dec96")
        events = [event for book in source.books.values()
                  for event in book.history]
        assert events, "expected checkouts/returns"
        kinds = {kind for _, kind in events}
        assert "checkout" in kinds

    def test_popular_book_scenario_data(self):
        """At least one book accumulates 2+ checkouts over a month."""
        source = LibrarySource(seed=3, books=6, events_per_day=6.0)
        source.advance("1Jan97")
        assert any(book.checkout_count >= 2
                   for book in source.books.values())

    def test_acquisitions_flag(self):
        source = LibrarySource(seed=4, books=3, events_per_day=20.0,
                               acquisitions=True)
        source.advance("1Feb97")
        assert len(source.books) > 3

    def test_deterministic(self):
        a = LibrarySource(seed=9, stable_ids=True)
        b = LibrarySource(seed=9, stable_ids=True)
        a.advance("20Dec96")
        b.advance("20Dec96")
        assert a.export().same_as(b.export())
