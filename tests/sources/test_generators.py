"""Tests for the random database / change-set / history generators."""

import pytest

from repro import (
    large_database,
    large_history,
    large_world,
    random_change_set,
    random_database,
    random_history,
)


class TestRandomDatabase:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_oem(self, seed):
        random_database(seed=seed, nodes=40).check()

    def test_deterministic(self):
        assert random_database(seed=3).same_as(random_database(seed=3))

    def test_size_parameter(self):
        assert len(random_database(seed=1, nodes=50)) == 50

    def test_extra_arcs_create_sharing(self):
        db = random_database(seed=2, nodes=60, extra_arc_ratio=0.6)
        multi_parent = [node for node in db.nodes()
                        if len(set(db.parents(node))) > 1]
        assert multi_parent


class TestRandomChangeSet:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_for_database(self, seed):
        db = random_database(seed=seed, nodes=30)
        changes = random_change_set(db, seed=seed, size=8)
        assert changes.is_valid_for(db)

    def test_respects_reserved_ids(self):
        db = random_database(seed=1, nodes=20)
        reserved = {f"g{i}" for i in range(1, 100)}
        changes = random_change_set(db, seed=1, size=8,
                                    reserved_ids=reserved)
        assert not (changes.created_nodes() & reserved)

    def test_deterministic(self):
        db = random_database(seed=5, nodes=25)
        assert random_change_set(db, seed=9) == random_change_set(db, seed=9)


class TestRandomHistory:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_history(self, seed):
        db = random_database(seed=seed, nodes=25)
        history = random_history(db, seed=seed, steps=5)
        assert history.is_valid_for(db)

    def test_timestamps_daily(self):
        db = random_database(seed=1, nodes=25)
        history = random_history(db, seed=1, steps=4)
        times = history.timestamps()
        assert all((later - earlier) % 86400 == 0
                   for earlier, later in zip(times, times[1:]))

    def test_base_not_mutated(self):
        db = random_database(seed=2, nodes=25)
        before = db.copy()
        random_history(db, seed=2, steps=4)
        assert db.same_as(before)

    def test_feeds_doem_round_trip(self):
        """Generators compose with the core round-trip invariant."""
        from repro import build_doem, current_snapshot, encoded_history
        db = random_database(seed=11, nodes=30)
        history = random_history(db, seed=11, steps=5)
        doem = build_doem(db, history)
        assert encoded_history(doem) == history
        assert current_snapshot(doem).same_as(history.apply_to(db.copy()))


def history_fingerprint(history):
    """Everything observable about a history: timestamps and op text."""
    return [(str(when), [str(op) for op in change_set])
            for when, change_set in history.entries()]


class TestLargeWorld:
    """The benchmark-scale generator: small-size checks run in tier-1;
    the full bench-size world is @slow (CI's bench job runs it)."""

    def test_database_deterministic(self):
        first = large_database(seed=7, items=40, extra_links=10)
        second = large_database(seed=7, items=40, extra_links=10)
        assert first.same_as(second)

    def test_database_shape(self):
        db = large_database(seed=1, items=30, extra_links=5)
        items = list(db.children(db.root, "item"))
        assert len(items) == 30
        for item in items:
            assert list(db.children(item, "price"))
            assert list(db.children(item, "name"))
        # extra links create the sharing the wildcard closure must dedup
        assert any(db.has_arc(s, "link", t)
                   for s in items for t in db.children(s, "link"))
        db.check()

    @pytest.mark.parametrize("seed", range(3))
    def test_history_deterministic(self, seed):
        """Same seed -> identical OEM history, op for op."""
        db = large_database(seed=seed, items=40)
        first = large_history(db, seed=seed, steps=3, churn=30)
        second = large_history(db, seed=seed, steps=3, churn=30)
        assert history_fingerprint(first) == history_fingerprint(second)

    def test_seeds_differ(self):
        db = large_database(seed=0, items=40)
        assert history_fingerprint(large_history(db, seed=1, steps=3,
                                                 churn=30)) != \
            history_fingerprint(large_history(db, seed=2, steps=3, churn=30))

    @pytest.mark.parametrize("seed", range(3))
    def test_history_valid(self, seed):
        db = large_database(seed=seed, items=40)
        history = large_history(db, seed=seed, steps=4, churn=40)
        assert history.is_valid_for(db)
        assert db.same_as(large_database(seed=seed, items=40))  # untouched

    def test_all_annotation_kinds_present(self):
        """Every change set mixes kinds so all four DOEM annotations land."""
        from repro import AddArc, CreNode, RemArc, UpdNode
        db = large_database(seed=2, items=40)
        history = large_history(db, seed=2, steps=3, churn=60)
        kinds = {type(op) for _, change_set in history.entries()
                 for op in change_set}
        assert kinds == {CreNode, UpdNode, AddArc, RemArc}

    def test_world_composes(self):
        from repro import current_snapshot, encoded_history
        db, history, doem = large_world(seed=3, items=25, extra_links=5,
                                        steps=3, churn=20)
        assert encoded_history(doem) == history
        assert current_snapshot(doem).same_as(history.apply_to(db.copy()))

    @pytest.mark.slow
    def test_bench_scale_world(self):
        """The full benchmark size builds, validates, and stays
        deterministic (CI's bench job runs this; tier-1 skips it)."""
        db, history, doem = large_world(seed=0, items=1000, extra_links=200,
                                        steps=6, churn=200)
        assert len(db) >= 5000
        assert history.operation_count() >= 1000
        again = large_database(seed=0, items=1000, extra_links=200)
        assert db.same_as(again)
        assert history_fingerprint(history) == history_fingerprint(
            large_history(again, seed=0, steps=6, churn=200))
