"""Tests for the random database / change-set / history generators."""

import pytest

from repro import random_change_set, random_database, random_history


class TestRandomDatabase:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_oem(self, seed):
        random_database(seed=seed, nodes=40).check()

    def test_deterministic(self):
        assert random_database(seed=3).same_as(random_database(seed=3))

    def test_size_parameter(self):
        assert len(random_database(seed=1, nodes=50)) == 50

    def test_extra_arcs_create_sharing(self):
        db = random_database(seed=2, nodes=60, extra_arc_ratio=0.6)
        multi_parent = [node for node in db.nodes()
                        if len(set(db.parents(node))) > 1]
        assert multi_parent


class TestRandomChangeSet:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_for_database(self, seed):
        db = random_database(seed=seed, nodes=30)
        changes = random_change_set(db, seed=seed, size=8)
        assert changes.is_valid_for(db)

    def test_respects_reserved_ids(self):
        db = random_database(seed=1, nodes=20)
        reserved = {f"g{i}" for i in range(1, 100)}
        changes = random_change_set(db, seed=1, size=8,
                                    reserved_ids=reserved)
        assert not (changes.created_nodes() & reserved)

    def test_deterministic(self):
        db = random_database(seed=5, nodes=25)
        assert random_change_set(db, seed=9) == random_change_set(db, seed=9)


class TestRandomHistory:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_history(self, seed):
        db = random_database(seed=seed, nodes=25)
        history = random_history(db, seed=seed, steps=5)
        assert history.is_valid_for(db)

    def test_timestamps_daily(self):
        db = random_database(seed=1, nodes=25)
        history = random_history(db, seed=1, steps=4)
        times = history.timestamps()
        assert all((later - earlier) % 86400 == 0
                   for earlier, later in zip(times, times[1:]))

    def test_base_not_mutated(self):
        db = random_database(seed=2, nodes=25)
        before = db.copy()
        random_history(db, seed=2, steps=4)
        assert db.same_as(before)

    def test_feeds_doem_round_trip(self):
        """Generators compose with the core round-trip invariant."""
        from repro import build_doem, current_snapshot, encoded_history
        db = random_database(seed=11, nodes=30)
        history = random_history(db, seed=11, steps=5)
        doem = build_doem(db, history)
        assert encoded_history(doem) == history
        assert current_snapshot(doem).same_as(history.apply_to(db.copy()))
