"""Differential harness: the indexed engine is trusted *because* this passes.

The annotation-index pushdown (:class:`repro.IndexedChorelEngine`) and the
checkpoint snapshot cache (:class:`repro.SnapshotCache`) are fast paths
over the same semantics the naive implementations define.  This harness
generates randomized worlds (random OEM database + random valid history,
via :mod:`repro.sources.generators`) and asserts, pair by pair:

* every Chorel query answered by the indexed engine produces exactly the
  rows the naive engine produces -- across well over 200 randomized
  history/query pairs, covering all four annotation kinds, bounded and
  unbounded intervals, literal pins, and deliberately non-indexable
  shapes that must fall back;
* ``Ot(D)`` served by the snapshot cache equals ``Ot(D)`` computed
  directly, for every sampled ``t`` (exact history timestamps, midpoints,
  before-first, after-last, and both infinities), under random access
  orders and a small capacity that forces evictions;
* both equivalences survive *incremental* growth: folding more change
  sets into a live DOEM database must keep the attached index and the
  invalidated cache in agreement with the naive paths.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    NEG_INF,
    POS_INF,
    AnnotationIndex,
    ChorelEngine,
    IndexedChorelEngine,
    SnapshotCache,
    build_doem,
    random_change_set,
    random_database,
    random_history,
    snapshot_at,
)
from repro.doem.build import apply_change_set
from repro.sources.generators import LABELS

WORLD_SEEDS = range(20)

# Query templates over the generator's label vocabulary; {low}/{mid}/{high}
# are formatted with timestamps drawn from each world's own history.
QUERY_TEMPLATES = [
    # add / rem arc annotations, bounded and unbounded
    "select root.<add at T>item where T > {mid}",
    "select R, T from root.<add at T>{label} R where T <= {mid}",
    "select root.<add>link",
    "select X, T from root.item.<rem at T>link X",
    "select root.<rem at T>{label} where T > {low} and T <= {high}",
    # cre / upd node annotations
    "select root.item.name<cre at T> where T <= {high}",
    "select N, T from root.{label}.name<cre at T> N where T > {low}",
    "select T, OV, NV from root.item.price<upd at T from OV to NV> "
    "where T > {low}",
    "select root.item.price<upd at T> where T = {mid}",
    # literal pin (degenerate interval pushdown)
    "select root.<add at {mid}>item",
    # shapes the planner must refuse (fallback differential)
    "select root.#.price<upd at T> where T > {mid}",
    "select root.item where root.item.price < 500",
]


def make_world(seed: int, *, nodes: int = 24, steps: int = 4,
               set_size: int = 6):
    db = random_database(seed=seed, nodes=nodes)
    history = random_history(db, seed=seed, steps=steps, set_size=set_size)
    return db, history, build_doem(db, history)


def world_queries(history) -> list[str]:
    times = history.timestamps()
    if not times:
        return []
    low, mid, high = times[0], times[len(times) // 2], times[-1]
    rng = random.Random(hash((str(low), len(times))))
    return [template.format(low=low, mid=mid, high=high,
                            label=rng.choice(LABELS))
            for template in QUERY_TEMPLATES]


def rows(result) -> list[str]:
    return sorted(map(str, result))


class TestEngineDifferential:
    """Indexed vs. naive Chorel over randomized history/query pairs."""

    @pytest.mark.parametrize("seed", WORLD_SEEDS)
    def test_indexed_engine_matches_naive(self, seed):
        _, history, doem = make_world(seed)
        queries = world_queries(history)
        assert queries, "every generated world must produce a history"
        naive = ChorelEngine(doem, name="root")
        indexed = IndexedChorelEngine(doem, name="root")
        for query in queries:
            assert rows(naive.run(query)) == rows(indexed.run(query)), \
                (seed, query)
        # The harness is only meaningful if the fast path actually ran.
        assert indexed.stats.indexed_queries > 0, seed
        assert indexed.stats.fallback_queries > 0, seed

    def test_pair_budget(self):
        """The acceptance floor: >= 200 history/query differential pairs."""
        total = sum(len(world_queries(make_world(seed)[1]))
                    for seed in WORLD_SEEDS)
        assert total >= 200, total

    @pytest.mark.parametrize("seed", [3, 11, 17])
    def test_equivalence_survives_incremental_growth(self, seed):
        """Fold extra change sets into a live engine pair; still identical."""
        _, history, doem = make_world(seed)
        naive = ChorelEngine(doem, name="root")
        indexed = IndexedChorelEngine(doem, name="root")
        queries = world_queries(history)
        reserved = set(doem.graph.nodes())
        when = history.timestamps()[-1]
        from repro import current_snapshot
        for round_number in range(3):
            when = when.plus(days=1)
            change_set = random_change_set(
                current_snapshot(doem), seed=seed * 97 + round_number,
                size=5, id_prefix=f"x{round_number}_", reserved_ids=reserved)
            if change_set:
                apply_change_set(doem, when, change_set)
                reserved.update(change_set.created_nodes())
            for query in queries:
                assert rows(naive.run(query)) == rows(indexed.run(query)), \
                    (seed, round_number, query)

    @pytest.mark.parametrize("seed", [2, 9])
    def test_live_index_matches_rebuilt(self, seed):
        """Incremental inserts == from-scratch rebuild, per kind."""
        _, history, doem = make_world(seed)
        indexed = IndexedChorelEngine(doem, name="root")
        when = history.timestamps()[-1].plus(days=1)
        from repro import current_snapshot
        change_set = random_change_set(current_snapshot(doem),
                                      seed=seed + 1, size=8, id_prefix="y_",
                                      reserved_ids=set(doem.graph.nodes()))
        apply_change_set(doem, when, change_set)
        rebuilt = AnnotationIndex(doem)
        for kind in ("cre", "upd", "add", "rem"):
            assert sorted(str(entry) for entry
                          in indexed.index.between(kind)) == \
                sorted(str(entry) for entry in rebuilt.between(kind)), kind


class TestSnapshotCacheDifferential:
    """Cached Ot(D) vs. direct Ot(D) for every sampled t."""

    @staticmethod
    def sample_times(history) -> list[object]:
        times = history.timestamps()
        samples = [NEG_INF, POS_INF, times[0].plus(hours=-1),
                   times[-1].plus(days=2)]
        samples.extend(times)
        samples.extend(when.plus(hours=7) for when in times)
        return samples

    @pytest.mark.parametrize("seed", WORLD_SEEDS)
    def test_cached_equals_direct(self, seed):
        _, history, doem = make_world(seed)
        cache = SnapshotCache(doem, capacity=3)  # small: force evictions
        samples = self.sample_times(history)
        random.Random(seed).shuffle(samples)
        for when in samples:
            assert cache.snapshot_at(when).same_as(
                snapshot_at(doem, when)), (seed, when)
        stats = cache.stats
        assert stats.lookups == len(samples)
        assert stats.exact_hits + stats.incremental + stats.full \
            == stats.lookups

    @pytest.mark.parametrize("seed", [1, 8, 15])
    def test_cache_invalidates_on_growth(self, seed):
        _, history, doem = make_world(seed)
        cache = SnapshotCache(doem, capacity=4)
        last = history.timestamps()[-1]
        assert cache.snapshot_at(last).same_as(snapshot_at(doem, last))
        from repro import current_snapshot
        change_set = random_change_set(current_snapshot(doem),
                                      seed=seed + 5, size=4, id_prefix="z_",
                                      reserved_ids=set(doem.graph.nodes()))
        when = last.plus(days=1)
        apply_change_set(doem, when, change_set)
        for probe in (last, when, POS_INF):
            assert cache.snapshot_at(probe).same_as(
                snapshot_at(doem, probe)), (seed, probe)
        assert cache.stats.invalidations == 1

    def test_returned_snapshots_are_isolated(self):
        """Mutating a served snapshot must not poison the cache."""
        _, history, doem = make_world(0)
        cache = SnapshotCache(doem, capacity=4)
        when = history.timestamps()[0]
        first = cache.snapshot_at(when)
        first._values[first.root] = "corrupted"
        again = cache.snapshot_at(when)
        assert again.same_as(snapshot_at(doem, when))

    def test_incremental_path_actually_used(self):
        """Ascending probes reuse the previous checkpoint, not O0 replay."""
        _, history, doem = make_world(4, steps=6)
        cache = SnapshotCache(doem, capacity=8)
        for when in history.timestamps():
            assert cache.snapshot_at(when).same_as(snapshot_at(doem, when))
        assert cache.stats.full == 1          # only the first probe
        assert cache.stats.incremental >= 4
        # each incremental step replays exactly the one new change set
        assert cache.stats.replayed_sets == cache.stats.incremental
