"""Property-based tests (hypothesis) on the library's core invariants.

The DESIGN.md invariants, checked over arbitrary generated inputs:

* round trip: ``O0(D(O,H)) == O``, ``H(D(O,H)) == H``, and
  ``Ot(D(O,H))`` equals the replayed prefix at every timestamp;
* encoding fidelity: ``decode(encode(D)) == D``;
* backend equivalence: native Chorel == translated Lorel over the encoding;
* serializer: ``loads(dumps(db)) == db``;
* diff contract: ``U(A)`` isomorphic to ``B`` for generated (A, B);
* coercion: comparisons are total functions (never raise) and equality
  coercion is symmetric.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import (
    COMPLEX,
    ChorelEngine,
    TranslatingChorelEngine,
    build_doem,
    current_snapshot,
    decode_doem,
    dumps,
    encode_doem,
    encoded_history,
    is_feasible,
    loads,
    oem_diff,
    original_snapshot,
    parse_timestamp,
    random_change_set,
    random_database,
    random_history,
    snapshot_at,
)
from repro.diff.oemdiff import apply_diff
from repro.oem.values import coerce_pair, compare, like
from repro.sources.base import scramble_ids

# The generators are themselves seeded and validated (tests/sources); the
# properties below quantify over their seed space plus shape parameters,
# which gives hypothesis shrinkable handles on "which world" failed.

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=40)
steps = st.integers(min_value=0, max_value=6)

atomic_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.integers(min_value=0, max_value=2**31).map(
        lambda ticks: parse_timestamp(ticks)),
)

relaxed = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestRoundTripInvariants:
    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_original_snapshot_recovers_o(self, seed, nodes, n_steps):
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = build_doem(db, history)
        assert original_snapshot(doem).same_as(db)

    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_encoded_history_recovers_h(self, seed, nodes, n_steps):
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = build_doem(db, history)
        assert encoded_history(doem) == history

    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_snapshot_at_equals_replay(self, seed, nodes, n_steps):
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = build_doem(db, history)
        snapshots = history.replay(db)
        for index, when in enumerate(history.timestamps()):
            assert snapshot_at(doem, when).same_as(snapshots[index + 1])
            assert snapshot_at(doem, when.plus(hours=-1)).same_as(
                snapshots[index])
        assert current_snapshot(doem).same_as(snapshots[-1])

    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_built_doem_is_feasible(self, seed, nodes, n_steps):
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        assert is_feasible(build_doem(db, history))


class TestEncodingInvariants:
    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps)
    def test_decode_encode_identity(self, seed, nodes, n_steps):
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = build_doem(db, history)
        encoded = encode_doem(doem)
        encoded.oem.check()
        assert decode_doem(encoded).same_as(doem)


class TestSerializerInvariants:
    @relaxed
    @given(seed=seeds, nodes=sizes)
    def test_dumps_loads_identity(self, seed, nodes):
        db = random_database(seed=seed, nodes=nodes)
        assert loads(dumps(db)).same_as(db)

    @settings(max_examples=50, deadline=None)
    @given(value=atomic_values)
    def test_atomic_value_round_trip(self, value):
        from repro import OEMDatabase
        db = OEMDatabase(root="r")
        db.create_node("x", value)
        db.add_arc("r", "v", "x")
        restored = loads(dumps(db))
        assert restored.value("x") == value


class TestDiffInvariants:
    @relaxed
    @given(seed=seeds, nodes=st.integers(min_value=3, max_value=30),
           edits=st.integers(min_value=0, max_value=10))
    def test_diff_apply_isomorphism(self, seed, nodes, edits):
        old = random_database(seed=seed, nodes=nodes)
        new = old.copy()
        random_change_set(new, seed=seed + 1, size=edits).apply_to(new)
        scrambled = scramble_ids(new, salt=seed)
        change_set = oem_diff(old, scrambled)
        assert apply_diff(old, change_set).isomorphic_to(scrambled)

    @relaxed
    @given(seed=seeds, nodes=st.integers(min_value=3, max_value=30))
    def test_self_diff_is_empty(self, seed, nodes):
        db = random_database(seed=seed, nodes=nodes)
        assert len(oem_diff(db, scramble_ids(db, salt=1))) == 0

    @relaxed
    @given(seed=seeds, nodes=sizes,
           n_steps=st.integers(min_value=1, max_value=5))
    def test_inferred_change_set_advances_replay(self, seed, nodes, n_steps):
        """The OEMdiff invariant ``U(R_{i-1}) == R_i``: for every pair of
        consecutive replayed snapshots, applying the *inferred* change set
        to the old snapshot yields the new one."""
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        snapshots = history.replay(db)
        for old, new in zip(snapshots, snapshots[1:]):
            inferred = oem_diff(old, new)
            assert apply_diff(old.copy(), inferred).isomorphic_to(new)


class TestBackendEquivalence:
    QUERIES = [
        "select root.<add at T>item",
        "select root.item.name<cre at T>",
        "select X, OV from root.#.price<upd at T from OV> X",
        "select R from root.item R where R.<rem at T>link",
        "select root.item where root.item.price < 500",
    ]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=seeds)
    def test_native_equals_translated(self, seed):
        db = random_database(seed=seed, nodes=18)
        history = random_history(db, seed=seed, steps=3)
        doem = build_doem(db, history)
        native = ChorelEngine(doem, name="root")
        translating = TranslatingChorelEngine(doem, name="root")
        for query in self.QUERIES:
            assert sorted(str(r) for r in native.run(query)) == \
                sorted(str(r) for r in translating.run(query)), query


class TestCoercionProperties:
    @settings(max_examples=200, deadline=None)
    @given(left=atomic_values, right=atomic_values,
           op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    def test_compare_is_total(self, left, right, op):
        result = compare(left, right, op)
        assert isinstance(result, bool)

    @settings(max_examples=200, deadline=None)
    @given(left=atomic_values, right=atomic_values)
    def test_equality_coercion_symmetric(self, left, right):
        assert compare(left, right, "=") == compare(right, left, "=")

    @settings(max_examples=200, deadline=None)
    @given(left=atomic_values, right=atomic_values)
    def test_trichotomy_under_coercion(self, left, right):
        # When a coercion exists, exactly one of <, =, > holds.
        if coerce_pair(left, right) is not None:
            outcomes = [compare(left, right, op) for op in ("<", "=", ">")]
            assert outcomes.count(True) == 1

    @settings(max_examples=100, deadline=None)
    @given(value=atomic_values)
    def test_like_percent_matches_everything(self, value):
        assert like(value, "%")

    @settings(max_examples=100, deadline=None)
    @given(text=st.text(max_size=30))
    def test_like_self_is_reflexive_without_wildcards(self, text):
        if "%" not in text and "_" not in text:
            assert like(text, text)


class TestCompactionInvariants:
    @relaxed
    @given(seed=seeds, nodes=sizes,
           n_steps=st.integers(min_value=2, max_value=6),
           cut_fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_compaction_preserves_recent_history(self, seed, nodes,
                                                 n_steps, cut_fraction):
        from repro import compact
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        if not len(history):
            return
        doem = build_doem(db, history)
        times = history.timestamps()
        cutoff = times[min(len(times) - 1,
                           int(cut_fraction * len(times)))]
        cut = compact(doem, cutoff)
        assert is_feasible(cut)
        assert original_snapshot(cut).same_as(snapshot_at(doem, cutoff))
        assert current_snapshot(cut).same_as(current_snapshot(doem))
        for when in times:
            if when > cutoff:
                assert snapshot_at(cut, when).same_as(
                    snapshot_at(doem, when))
        assert cut.annotation_count() <= doem.annotation_count()


class TestIncrementalStructures:
    """The PR-1 fast paths agree with the naive definitions, universally."""

    @relaxed
    @given(seed=seeds, nodes=sizes, n_steps=steps,
           capacity=st.integers(min_value=1, max_value=6))
    def test_snapshot_cache_equals_direct(self, seed, nodes, n_steps,
                                          capacity):
        from repro import NEG_INF, POS_INF, SnapshotCache
        import random as stdlib_random
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = build_doem(db, history)
        cache = SnapshotCache(doem, capacity=capacity)
        samples = [NEG_INF, POS_INF]
        for when in history.timestamps():
            samples.extend([when, when.plus(hours=-3), when.plus(hours=5)])
        stdlib_random.Random(seed).shuffle(samples)
        for when in samples:
            assert cache.snapshot_at(when).same_as(snapshot_at(doem, when))

    @relaxed
    @given(seed=seeds, nodes=sizes,
           n_steps=st.integers(min_value=1, max_value=6))
    def test_attached_index_equals_rebuilt(self, seed, nodes, n_steps):
        """Attaching before folding the history == rebuilding after it."""
        from repro import AnnotationIndex, DOEMDatabase, TimestampIndex
        from repro.doem.build import DOEMApplier
        db = random_database(seed=seed, nodes=nodes)
        history = random_history(db, seed=seed, steps=n_steps)
        doem = DOEMDatabase(db.copy())
        live = TimestampIndex(doem)          # attached while still empty
        applier = DOEMApplier(doem)
        for when, change_set in history:
            applier.apply(when, change_set)
        rebuilt = AnnotationIndex(doem)
        for kind in ("cre", "upd", "add", "rem"):
            assert sorted(str(e) for e in live.between(kind)) == \
                sorted(str(e) for e in rebuilt.between(kind)), kind


class TestChangeSetProperties:
    @relaxed
    @given(seed=seeds, nodes=sizes, size=st.integers(min_value=0, max_value=12))
    def test_generated_sets_always_valid(self, seed, nodes, size):
        db = random_database(seed=seed, nodes=nodes)
        changes = random_change_set(db, seed=seed, size=size)
        assert changes.is_valid_for(db)

    @relaxed
    @given(seed=seeds, nodes=sizes)
    def test_apply_preserves_oem_validity(self, seed, nodes):
        db = random_database(seed=seed, nodes=nodes)
        changes = random_change_set(db, seed=seed, size=8)
        changes.apply_to(db)
        db.check()
