"""Tests for the time domain (repro.timestamps)."""

import datetime

import pytest

from repro import NEG_INF, POS_INF, Timestamp, TimestampError, parse_timestamp
from repro.timestamps import is_timestamp_literal


class TestParsing:
    def test_paper_style(self):
        ts = parse_timestamp("1Jan97")
        assert ts.to_datetime() == datetime.datetime(1997, 1, 1)

    def test_paper_style_all_months(self):
        months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
        for index, month in enumerate(months, start=1):
            ts = parse_timestamp(f"15{month}97")
            assert ts.to_datetime().month == index

    def test_full_month_name(self):
        assert parse_timestamp("8January1997") == parse_timestamp("8Jan97")

    def test_two_digit_year_window(self):
        assert parse_timestamp("1Jan97").to_datetime().year == 1997
        assert parse_timestamp("1Jan25").to_datetime().year == 2025
        assert parse_timestamp("1Jan70").to_datetime().year == 1970

    def test_four_digit_year(self):
        assert parse_timestamp("30Dec1996") == parse_timestamp("30Dec96")

    def test_time_of_day(self):
        ts = parse_timestamp("30Dec96 11:30pm")
        when = ts.to_datetime()
        assert (when.hour, when.minute) == (23, 30)

    def test_time_of_day_am(self):
        assert parse_timestamp("1Jan97 12:05am").to_datetime().hour == 0
        assert parse_timestamp("1Jan97 9:05am").to_datetime().hour == 9

    def test_iso_date(self):
        assert parse_timestamp("1997-01-08") == parse_timestamp("8Jan97")

    def test_iso_datetime(self):
        ts = parse_timestamp("1997-01-08 14:30:15")
        when = ts.to_datetime()
        assert (when.hour, when.minute, when.second) == (14, 30, 15)

    def test_us_date(self):
        assert parse_timestamp("1/8/97") == parse_timestamp("8Jan97")

    def test_int_ticks(self):
        assert parse_timestamp(0).to_datetime() == datetime.datetime(1970, 1, 1)

    def test_datetime_passthrough(self):
        when = datetime.datetime(1997, 1, 5, 12, 0)
        assert parse_timestamp(when).to_datetime() == when

    def test_date_passthrough(self):
        assert parse_timestamp(datetime.date(1997, 1, 5)) == \
            parse_timestamp("5Jan97")

    def test_timestamp_passthrough(self):
        ts = parse_timestamp("1Jan97")
        assert parse_timestamp(ts) is ts

    def test_garbage_rejected(self):
        with pytest.raises(TimestampError):
            parse_timestamp("not a date")

    def test_bad_month_rejected(self):
        with pytest.raises(TimestampError):
            parse_timestamp("1Xyz97")

    def test_boolean_rejected(self):
        with pytest.raises(TimestampError):
            parse_timestamp(True)

    def test_none_rejected(self):
        with pytest.raises(TimestampError):
            parse_timestamp(None)


class TestOrderingAndArithmetic:
    def test_total_order(self):
        a = parse_timestamp("30Dec96")
        b = parse_timestamp("1Jan97")
        c = parse_timestamp("8Jan97")
        assert a < b < c
        assert c > a
        assert a <= a and a >= a

    def test_infinities(self):
        ts = parse_timestamp("1Jan97")
        assert NEG_INF < ts < POS_INF
        assert NEG_INF < POS_INF
        assert not (NEG_INF < NEG_INF)
        assert NEG_INF == NEG_INF and POS_INF == POS_INF

    def test_infinity_is_not_finite(self):
        assert not NEG_INF.is_finite and not POS_INF.is_finite
        assert parse_timestamp("1Jan97").is_finite

    def test_infinity_has_no_calendar_form(self):
        with pytest.raises(TimestampError):
            POS_INF.to_datetime()

    def test_plus(self):
        ts = parse_timestamp("1Jan97")
        assert ts.plus(days=7) == parse_timestamp("8Jan97")
        assert ts.plus(hours=24) == ts.plus(days=1)
        assert ts.plus(minutes=60) == ts.plus(hours=1)

    def test_plus_on_infinity_is_identity(self):
        assert POS_INF.plus(days=5) is POS_INF

    def test_subtraction_seconds(self):
        a = parse_timestamp("1Jan97")
        b = parse_timestamp("2Jan97")
        assert b - a == 86400

    def test_subtraction_with_infinity_fails(self):
        with pytest.raises(TimestampError):
            POS_INF - parse_timestamp("1Jan97")

    def test_hashable(self):
        times = {parse_timestamp("1Jan97"), parse_timestamp("1997-01-01")}
        assert len(times) == 1

    def test_ticks_must_be_int(self):
        with pytest.raises(TimestampError):
            Timestamp(1.5)  # type: ignore[arg-type]


class TestPresentation:
    def test_str_round_trips(self):
        for text in ["1Jan97", "30Dec96", "8Jan97"]:
            ts = parse_timestamp(text)
            assert parse_timestamp(str(ts)) == ts

    def test_str_with_time(self):
        ts = parse_timestamp("30Dec96 11:30pm")
        assert "23:30" in str(ts)
        assert parse_timestamp(str(ts)) == ts

    def test_infinity_str(self):
        assert str(NEG_INF) == "NEG_INF"
        assert str(POS_INF) == "POS_INF"

    def test_repr(self):
        assert "1Jan97" in repr(parse_timestamp("1Jan97"))


class TestLiteralDetection:
    def test_positive(self):
        for text in ["4Jan97", "1997-01-01", "1/8/97", "30Dec96 11:30pm"]:
            assert is_timestamp_literal(text), text

    def test_negative(self):
        for text in ["hello", "42", "20.5", "Jan97"]:
            assert not is_timestamp_literal(text), text
