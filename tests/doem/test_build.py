"""Tests for D(O, H) construction (Section 3.1) -- Figure 4 included."""

import pytest

from repro import (
    COMPLEX,
    AddArc,
    ChangeSet,
    CreNode,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    build_doem,
    parse_timestamp,
)
from repro.doem.annotations import Add, Cre, Rem, Upd
from repro.doem.build import apply_change_set
from repro.errors import InvalidChangeError

T1 = parse_timestamp("1Jan97")
T2 = parse_timestamp("5Jan97")
T3 = parse_timestamp("8Jan97")


class TestFigure4:
    """The DOEM database of Example 3.1 / Figure 4."""

    def test_update_annotation_with_old_value(self, guide_doem):
        assert guide_doem.node_annotations("n1") == (Upd(T1, 10),)
        assert guide_doem.graph.value("n1") == 20

    def test_create_annotations(self, guide_doem):
        assert guide_doem.node_annotations("n2") == (Cre(T1),)
        assert guide_doem.node_annotations("n3") == (Cre(T1),)
        assert guide_doem.node_annotations("n5") == (Cre(T2),)

    def test_add_annotations(self, guide_doem):
        assert guide_doem.arc_annotations("guide", "restaurant", "n2") == \
            (Add(T1),)
        assert guide_doem.arc_annotations("n2", "name", "n3") == (Add(T1),)
        assert guide_doem.arc_annotations("n2", "comment", "n5") == (Add(T2),)

    def test_removed_arc_stays_with_rem_annotation(self, guide_doem):
        # "the removed parking arc ... is not actually removed from the
        # DOEM database; instead it bears a rem annotation."
        assert guide_doem.graph.has_arc("r2", "parking", "n7")
        assert guide_doem.arc_annotations("r2", "parking", "n7") == (Rem(T3),)

    def test_unchanged_parts_have_no_annotations(self, guide_doem):
        assert guide_doem.node_annotations("nm1") == ()
        assert guide_doem.arc_annotations("guide", "restaurant", "r1") == ()

    def test_annotation_totals(self, guide_doem):
        # 1 upd + 3 cre + 3 add + 1 rem = 8, one per basic operation.
        assert guide_doem.annotation_count() == 8
        assert guide_doem.timestamps() == [T1, T2, T3]


class TestValidityAgainstConceptualSnapshot:
    def make_doem(self):
        graph = OEMDatabase(root="r")
        graph.create_node("a", COMPLEX)
        graph.create_node("x", 1)
        graph.add_arc("r", "child", "a")
        graph.add_arc("a", "val", "x")
        from repro import DOEMDatabase
        return DOEMDatabase(graph)

    def test_re_add_of_removed_arc_annotates_same_arc(self):
        doem = self.make_doem()
        apply_change_set(doem, T1, [RemArc("a", "val", "x")])
        # x is now dead; re-linking it directly is invalid (id not reusable
        # as a *target* of addArc because the node is deleted).
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T2, [AddArc("a", "val", "x")])

    def test_re_add_when_target_still_live(self):
        doem = self.make_doem()
        # keep x alive through a second arc, then remove and re-add.
        apply_change_set(doem, T1, [AddArc("r", "keep", "x")])
        apply_change_set(doem, T2, [RemArc("a", "val", "x")])
        apply_change_set(doem, T3, [AddArc("a", "val", "x")])
        annotations = doem.arc_annotations("a", "val", "x")
        assert annotations == (Rem(T2), Add(T3))

    def test_adding_existing_live_arc_rejected(self):
        doem = self.make_doem()
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T1, [AddArc("a", "val", "x")])

    def test_removing_dead_arc_rejected(self):
        doem = self.make_doem()
        apply_change_set(doem, T1, [AddArc("r", "keep", "x"),
                                    ])
        apply_change_set(doem, T2, [RemArc("a", "val", "x")])
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T3, [RemArc("a", "val", "x")])

    def test_deleted_node_ids_never_reused(self):
        doem = self.make_doem()
        apply_change_set(doem, T1, [RemArc("r", "child", "a")])
        # a and x are conceptually deleted but their ids remain taken.
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T2, [CreNode("x", 9)])

    def test_ops_on_dead_nodes_rejected(self):
        doem = self.make_doem()
        apply_change_set(doem, T1, [RemArc("r", "child", "a")])
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T2, [UpdNode("x", 9)])
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T2, [AddArc("r", "back", "a")])

    def test_update_complex_to_atomic_with_dead_arcs(self):
        doem = self.make_doem()
        apply_change_set(doem, T1, [RemArc("a", "val", "x"),
                                    AddArc("r", "keep", "x")])
        # 'a' has no *live* subobjects now, so it may become atomic even
        # though the dead arc lingers in the DOEM graph.
        apply_change_set(doem, T2, [UpdNode("a", 42)])
        assert doem.graph.value("a") == 42
        assert doem.graph.has_arc("a", "val", "x")  # dead arc retained

    def test_update_complex_with_live_children_rejected(self):
        doem = self.make_doem()
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T1, [UpdNode("a", 42)])


class TestBuildDoem:
    def test_origin_not_mutated(self, guide_db, guide_history):
        before = guide_db.copy()
        build_doem(guide_db, guide_history)
        assert guide_db.same_as(before)

    def test_invalid_history_raises(self, guide_db):
        history = OEMHistory([("1Jan97", [UpdNode("ghost", 1)])])
        with pytest.raises(InvalidChangeError):
            build_doem(guide_db, history)

    def test_empty_history(self, guide_db):
        doem = build_doem(guide_db, OEMHistory())
        assert doem.annotation_count() == 0
        assert doem.graph.same_as(guide_db)

    def test_multiple_updates_accumulate(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", 1)
        graph.add_arc("r", "v", "x")
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", 2)]),
            ("5Jan97", [UpdNode("x", 3)]),
        ])
        doem = build_doem(graph, history)
        assert doem.node_annotations("x") == (Upd(T1, 1), Upd(T2, 2))
        assert doem.graph.value("x") == 3
