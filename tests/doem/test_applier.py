"""Direct tests for the incremental DOEM applier and build internals."""

import pytest

from repro import (
    COMPLEX,
    AddArc,
    ChangeSet,
    CreNode,
    DOEMDatabase,
    OEMDatabase,
    RemArc,
    UpdNode,
    parse_timestamp,
)
from repro.doem.build import DOEMApplier, apply_change_set
from repro.errors import InvalidChangeError

T1 = parse_timestamp("1Jan97")
T2 = parse_timestamp("2Jan97")
T3 = parse_timestamp("3Jan97")


@pytest.fixture
def doem():
    graph = OEMDatabase(root="r")
    graph.create_node("a", COMPLEX)
    graph.create_node("x", 1)
    graph.add_arc("r", "child", "a")
    graph.add_arc("a", "val", "x")
    return DOEMDatabase(graph)


class TestIncrementalApplication:
    def test_applier_persists_across_sets(self, doem):
        applier = DOEMApplier(doem)
        applier.apply(T1, ChangeSet([UpdNode("x", 2)]))
        applier.apply(T2, ChangeSet([UpdNode("x", 3)]))
        assert doem.graph.value("x") == 3
        assert len(doem.node_annotations("x")) == 2

    def test_dead_marking_propagates(self, doem):
        applier = DOEMApplier(doem)
        applier.apply(T1, ChangeSet([RemArc("r", "child", "a")]))
        # both 'a' and 'x' are conceptually dead
        with pytest.raises(InvalidChangeError):
            applier.apply(T2, ChangeSet([UpdNode("x", 9)]))
        with pytest.raises(InvalidChangeError):
            applier.apply(T2, ChangeSet([UpdNode("a", 9)]))

    def test_convenience_wrapper_recomputes_liveness(self, doem):
        apply_change_set(doem, T1, [RemArc("r", "child", "a")])
        # a fresh wrapper call must see 'a' as dead
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T2, [AddArc("a", "back", "a")])

    def test_cycle_keeps_nodes_live_only_if_root_reachable(self, doem):
        apply_change_set(doem, T1, [
            CreNode("b", COMPLEX), AddArc("a", "peer", "b"),
            AddArc("b", "peer", "a")])
        apply_change_set(doem, T2, [RemArc("r", "child", "a")])
        # a<->b cycle exists but is severed from the root: both dead.
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T3, [UpdNode("x", 5)])

    def test_same_timestamp_two_sets_allowed_in_applier(self, doem):
        """The applier does not enforce increasing timestamps itself --
        OEMHistory does; QSS supplies strictly increasing poll times."""
        applier = DOEMApplier(doem)
        applier.apply(T1, ChangeSet([UpdNode("x", 2)]))
        applier.apply(T1, ChangeSet([AddArc("r", "extra", "x")]))
        assert doem.graph.has_arc("r", "extra", "x")

    def test_empty_change_set_is_noop(self, doem):
        before = doem.copy()
        apply_change_set(doem, T1, [])
        assert doem.same_as(before)

    def test_add_arc_to_atomic_parent_rejected(self, doem):
        with pytest.raises(InvalidChangeError):
            apply_change_set(doem, T1, [AddArc("x", "kid", "a")])

    def test_create_with_complex_then_populate_later(self, doem):
        apply_change_set(doem, T1, [CreNode("c", COMPLEX),
                                    AddArc("r", "new", "c")])
        apply_change_set(doem, T2, [CreNode("d", 5),
                                    AddArc("c", "leaf", "d")])
        assert doem.graph.value("d") == 5
        assert [a.at for a in doem.node_annotations("c")] == [T1]
        assert [a.at for a in doem.node_annotations("d")] == [T2]


class TestCopySemantics:
    def test_doem_copy_detaches_appliers(self, doem):
        applier = DOEMApplier(doem)
        applier.apply(T1, ChangeSet([UpdNode("x", 2)]))
        clone = doem.copy()
        applier.apply(T2, ChangeSet([UpdNode("x", 3)]))
        assert clone.graph.value("x") == 2
        assert doem.graph.value("x") == 3
