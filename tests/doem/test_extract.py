"""Tests for H(D) extraction and the feasibility test (Section 3.2)."""

import pytest

from repro import (
    COMPLEX,
    AddArc,
    CreNode,
    DOEMDatabase,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    build_doem,
    encoded_history,
    is_feasible,
    parse_timestamp,
)
from repro.doem.annotations import Add, Cre, Rem, Upd
from repro.doem.extract import original_database


class TestEncodedHistory:
    def test_guide_round_trip(self, guide_history, guide_doem):
        assert encoded_history(guide_doem) == guide_history

    def test_original_database(self, guide_db, guide_doem):
        assert original_database(guide_doem).same_as(guide_db)

    def test_update_chain_values(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", "v0")
        graph.add_arc("r", "v", "x")
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", "v1")]),
            ("5Jan97", [UpdNode("x", "v2")]),
        ])
        doem = build_doem(graph, history)
        extracted = encoded_history(doem)
        entries = extracted.entries()
        # "v is the next value of n": first update writes v1, second v2.
        assert entries[0][1].operations() == (UpdNode("x", "v1"),)
        assert entries[1][1].operations() == (UpdNode("x", "v2"),)

    def test_creation_value_is_value_at_creation(self):
        # A node created with value 1 then updated to 2: creNode must
        # carry 1 (the old value of the first update), not 2.
        graph = OEMDatabase(root="r")
        history = OEMHistory([
            ("1Jan97", [CreNode("x", 1), AddArc("r", "v", "x")]),
            ("5Jan97", [UpdNode("x", 2)]),
        ])
        doem = build_doem(graph, history)
        extracted = encoded_history(doem)
        first_ops = set(extracted.entries()[0][1].operations())
        assert CreNode("x", 1) in first_ops

    def test_empty_history(self, guide_db):
        doem = build_doem(guide_db, OEMHistory())
        assert len(encoded_history(doem)) == 0

    def test_extraction_then_rebuild_is_identity(self, guide_db, guide_history):
        doem = build_doem(guide_db, guide_history)
        rebuilt = build_doem(original_database(doem), encoded_history(doem))
        assert rebuilt.same_as(doem)


class TestFeasibility:
    def test_built_doem_is_feasible(self, guide_doem):
        assert is_feasible(guide_doem)

    def test_unannotated_doem_is_feasible(self, guide_db):
        assert is_feasible(DOEMDatabase(guide_db.copy()))

    def test_hand_built_feasible(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", 5)
        graph.add_arc("r", "v", "x")
        doem = DOEMDatabase(graph)
        doem.annotate_node("x", Upd(parse_timestamp("1Jan97"), 3))
        assert is_feasible(doem)

    def test_cre_on_original_looking_node_is_infeasible(self):
        # A node with a cre annotation but reachable via an unannotated
        # (original) arc: the original snapshot would contain an arc to a
        # node that does not exist yet.
        graph = OEMDatabase(root="r")
        graph.create_node("x", 5)
        graph.add_arc("r", "v", "x")
        doem = DOEMDatabase(graph)
        doem.annotate_node("x", Cre(parse_timestamp("1Jan97")))
        assert not is_feasible(doem)

    def test_add_annotation_without_cre_child_ok(self):
        # An arc added later between two original nodes is feasible.
        graph = OEMDatabase(root="r")
        graph.create_node("a", COMPLEX)
        graph.create_node("x", 5)
        graph.add_arc("r", "a", "a")
        graph.add_arc("r", "x", "x")
        graph.add_arc("a", "link", "x")
        doem = DOEMDatabase(graph)
        doem.annotate_arc("a", "link", "x", Add(parse_timestamp("1Jan97")))
        assert is_feasible(doem)

    def test_rem_annotation_on_only_path_is_feasible(self):
        # Removing the only arc deletes the subtree -- that is a legal
        # history, so a DOEM recording it is feasible.
        graph = OEMDatabase(root="r")
        graph.create_node("x", 5)
        graph.add_arc("r", "v", "x")
        doem = DOEMDatabase(graph)
        doem.annotate_arc("r", "v", "x", Rem(parse_timestamp("1Jan97")))
        assert is_feasible(doem)

    def test_double_add_same_time_is_infeasible(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", 5)
        graph.add_arc("r", "v", "x")
        doem = DOEMDatabase(graph)
        when = parse_timestamp("1Jan97")
        doem.annotate_arc("r", "v", "x", Add(when))
        doem.annotate_arc("r", "v", "x", Add(when))
        assert not is_feasible(doem)

    def test_uniqueness_of_decomposition(self, guide_db, guide_history):
        """Feasible D determines (O0, H) uniquely: extracting from two
        structurally different builds of the same history agrees."""
        doem_a = build_doem(guide_db, guide_history)
        doem_b = build_doem(guide_db.copy(), guide_history)
        assert encoded_history(doem_a) == encoded_history(doem_b)
        assert original_database(doem_a).same_as(original_database(doem_b))
