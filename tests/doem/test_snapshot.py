"""Tests for snapshot extraction (Section 3.2): O0(D), Ot(D), current."""

import pytest

from repro import (
    COMPLEX,
    AddArc,
    CreNode,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    build_doem,
    current_snapshot,
    original_snapshot,
    snapshot_at,
)


class TestGuideSnapshots:
    def test_original_equals_figure2(self, guide_db, guide_doem):
        assert original_snapshot(guide_doem).same_as(guide_db)

    def test_current_equals_figure3(self, guide_doem, figure3_db):
        assert current_snapshot(guide_doem).same_as(figure3_db)

    def test_snapshot_before_first_change(self, guide_db, guide_doem):
        assert snapshot_at(guide_doem, "31Dec96").same_as(guide_db)

    def test_snapshot_between_changes(self, guide_doem):
        mid = snapshot_at(guide_doem, "3Jan97")
        # after t1: price updated, Hakata present without comment
        assert mid.value("n1") == 20
        assert mid.has_node("n2")
        assert not mid.has_node("n5")
        # parking arc still present (removed only at t3)
        assert mid.has_arc("r2", "parking", "n7")
        mid.check()

    def test_snapshot_at_exact_change_time_includes_it(self, guide_doem):
        at_t2 = snapshot_at(guide_doem, "5Jan97")
        assert at_t2.has_node("n5")
        assert at_t2.value("n5") == "need info"

    def test_snapshot_after_everything(self, guide_doem, figure3_db):
        assert snapshot_at(guide_doem, "1Jan99").same_as(figure3_db)

    def test_every_snapshot_is_valid_oem(self, guide_doem):
        for when in ["31Dec96", "1Jan97", "3Jan97", "5Jan97", "8Jan97"]:
            snapshot_at(guide_doem, when).check()


class TestSnapshotReplayAgreement:
    """Ot(D) must equal the replayed history prefix at every instant."""

    def test_replay_agreement(self, guide_db, guide_history, guide_doem):
        snapshots = guide_history.replay(guide_db)
        times = guide_history.timestamps()
        # Just before t1, at t1..t3, and beyond.
        assert snapshot_at(guide_doem, times[0].plus(days=-1)).same_as(snapshots[0])
        for index, when in enumerate(times):
            assert snapshot_at(guide_doem, when).same_as(snapshots[index + 1]), \
                f"mismatch at {when}"
            between = when.plus(hours=5)
            expected = snapshots[index + 1] if index + 1 == len(times) \
                or times[index + 1] > between else snapshots[index + 2]
            assert snapshot_at(guide_doem, between).same_as(snapshots[index + 1])


class TestTrickyTimelines:
    def test_arc_added_between_pre_existing_nodes(self):
        # Regression for the paper's literal Ot rule: an arc added at t2
        # between original nodes must NOT be present before t2.
        graph = OEMDatabase(root="r")
        graph.create_node("a", COMPLEX)
        graph.create_node("b", 1)
        graph.add_arc("r", "a", "a")
        graph.add_arc("r", "b", "b")
        history = OEMHistory([("5Jan97", [AddArc("a", "link", "b")])])
        doem = build_doem(graph, history)
        early = snapshot_at(doem, "1Jan97")
        assert not early.has_arc("a", "link", "b")
        late = snapshot_at(doem, "6Jan97")
        assert late.has_arc("a", "link", "b")

    def test_deleted_subtree_disappears_from_later_snapshots(self):
        graph = OEMDatabase(root="r")
        graph.create_node("a", COMPLEX)
        graph.create_node("x", 7)
        graph.add_arc("r", "child", "a")
        graph.add_arc("a", "val", "x")
        history = OEMHistory([("5Jan97", [RemArc("r", "child", "a")])])
        doem = build_doem(graph, history)
        assert snapshot_at(doem, "1Jan97").has_node("x")
        late = snapshot_at(doem, "6Jan97")
        assert not late.has_node("a")
        assert not late.has_node("x")
        assert len(late) == 1

    def test_created_node_absent_before_creation(self):
        graph = OEMDatabase(root="r")
        history = OEMHistory([
            ("5Jan97", [CreNode("new", 1), AddArc("r", "kid", "new")]),
        ])
        doem = build_doem(graph, history)
        assert not snapshot_at(doem, "4Jan97").has_node("new")
        assert snapshot_at(doem, "5Jan97").value("new") == 1

    def test_value_timeline_across_multiple_updates(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", "v0")
        graph.add_arc("r", "v", "x")
        history = OEMHistory([
            ("1Jan97", [UpdNode("x", "v1")]),
            ("5Jan97", [UpdNode("x", "v2")]),
            ("9Jan97", [UpdNode("x", "v3")]),
        ])
        doem = build_doem(graph, history)
        expectations = [("31Dec96", "v0"), ("1Jan97", "v1"),
                        ("4Jan97", "v1"), ("5Jan97", "v2"),
                        ("8Jan97", "v2"), ("9Jan97", "v3"),
                        ("1Feb97", "v3")]
        for when, expected in expectations:
            assert snapshot_at(doem, when).value("x") == expected, when

    def test_shared_node_survives_partial_removal(self, guide_doem):
        # n7 loses the r2 arc at t3 but stays reachable through r1.
        late = snapshot_at(guide_doem, "9Jan97")
        assert late.has_node("n7")
        assert late.has_arc("r1", "parking", "n7")
        assert not late.has_arc("r2", "parking", "n7")

    def test_cycle_preserved_in_snapshots(self, guide_doem):
        snap = current_snapshot(guide_doem)
        assert snap.has_arc("n7", "nearby-eats", "r1")
        assert snap.has_arc("r1", "parking", "n7")
