"""Tests for the DOEM database model (Definition 3.1) and its accessors."""

import pytest

from repro import COMPLEX, DOEMDatabase, OEMDatabase, parse_timestamp
from repro import NEG_INF, POS_INF
from repro.doem.annotations import Add, Cre, Rem, Upd, sort_key
from repro.errors import DOEMError, UnknownNodeError


@pytest.fixture
def doem():
    graph = OEMDatabase(root="r")
    graph.create_node("a", COMPLEX)
    graph.create_node("x", 5)
    graph.add_arc("r", "child", "a")
    graph.add_arc("a", "val", "x")
    return DOEMDatabase(graph)


T1 = parse_timestamp("1Jan97")
T2 = parse_timestamp("5Jan97")
T3 = parse_timestamp("8Jan97")


class TestAnnotations:
    def test_annotate_and_read_node(self, doem):
        doem.annotate_node("a", Cre(T1))
        doem.annotate_node("x", Upd(T2, 3))
        assert doem.node_annotations("a") == (Cre(T1),)
        assert doem.node_annotations("x") == (Upd(T2, 3),)

    def test_annotations_sorted_by_time(self, doem):
        doem.annotate_node("x", Upd(T3, 7))
        doem.annotate_node("x", Upd(T1, 3))
        times = [annotation.at for annotation in doem.node_annotations("x")]
        assert times == [T1, T3]

    def test_annotate_arc(self, doem):
        doem.annotate_arc("r", "child", "a", Add(T1))
        assert doem.arc_annotations("r", "child", "a") == (Add(T1),)

    def test_arc_annotation_on_node_rejected(self, doem):
        with pytest.raises(DOEMError):
            doem.annotate_node("a", Add(T1))  # type: ignore[arg-type]

    def test_node_annotation_on_arc_rejected(self, doem):
        with pytest.raises(DOEMError):
            doem.annotate_arc("r", "child", "a", Cre(T1))  # type: ignore[arg-type]

    def test_unknown_targets_rejected(self, doem):
        with pytest.raises(UnknownNodeError):
            doem.annotate_node("zzz", Cre(T1))
        with pytest.raises(DOEMError):
            doem.annotate_arc("r", "nope", "a", Add(T1))

    def test_timestamps_coerced_in_annotations(self):
        assert Cre("1Jan97").at == T1  # type: ignore[arg-type]
        assert Upd("5Jan97", 3).at == T2  # type: ignore[arg-type]

    def test_sort_key_orders_kinds(self):
        assert sort_key(Add(T1)) < sort_key(Rem(T1))
        assert sort_key(Cre(T1)) < sort_key(Upd(T1, 0))

    def test_annotation_count_and_timestamps(self, doem):
        doem.annotate_node("x", Upd(T2, 3))
        doem.annotate_arc("r", "child", "a", Add(T1))
        assert doem.annotation_count() == 2
        assert doem.timestamps() == [T1, T2]


class TestChorelAccessors:
    """creFun / updFun / addFun / remFun (Section 4.2.1)."""

    def test_cre_times(self, doem):
        assert doem.cre_times("a") == []
        doem.annotate_node("a", Cre(T1))
        assert doem.cre_times("a") == [T1]

    def test_upd_triples_new_value_chain(self, doem):
        # x: 1 -> 3 -> 5(current); old values recorded are 1 then 3.
        doem.annotate_node("x", Upd(T1, 1))
        doem.annotate_node("x", Upd(T2, 3))
        triples = doem.upd_triples("x")
        assert triples == [(T1, 1, 3), (T2, 3, 5)]

    def test_add_and_rem_pairs(self, doem):
        doem.annotate_arc("a", "val", "x", Add(T1))
        doem.annotate_arc("a", "val", "x", Rem(T2))
        assert doem.add_pairs("a", "val") == [(T1, "x")]
        assert doem.rem_pairs("a", "val") == [(T2, "x")]
        assert doem.add_pairs("a", "other") == []


class TestLiveness:
    def test_unannotated_arc_always_live(self, doem):
        for when in [NEG_INF, T1, POS_INF]:
            assert doem.arc_live_at("r", "child", "a", when)

    def test_added_arc_live_after_add(self, doem):
        doem.annotate_arc("a", "val", "x", Add(T2))
        assert not doem.arc_live_at("a", "val", "x", T1)
        assert doem.arc_live_at("a", "val", "x", T2)
        assert doem.arc_live_at("a", "val", "x", POS_INF)

    def test_removed_arc_dead_after_rem(self, doem):
        doem.annotate_arc("a", "val", "x", Rem(T2))
        assert doem.arc_live_at("a", "val", "x", T1)     # original arc
        assert not doem.arc_live_at("a", "val", "x", T2)
        assert not doem.arc_live_at("a", "val", "x", POS_INF)

    def test_add_rem_add_timeline(self, doem):
        doem.annotate_arc("a", "val", "x", Add(T1))
        doem.annotate_arc("a", "val", "x", Rem(T2))
        doem.annotate_arc("a", "val", "x", Add(T3))
        assert not doem.arc_live_at("a", "val", "x", NEG_INF)
        assert doem.arc_live_at("a", "val", "x", T1)
        assert not doem.arc_live_at("a", "val", "x", T2)
        assert doem.arc_live_at("a", "val", "x", T3)

    def test_value_at(self, doem):
        doem.annotate_node("x", Upd(T1, 1))
        doem.annotate_node("x", Upd(T3, 3))
        assert doem.value_at("x", NEG_INF) == 1
        assert doem.value_at("x", T1) == 3       # after the T1 update
        assert doem.value_at("x", T2) == 3
        assert doem.value_at("x", T3) == 5       # current value
        assert doem.value_at("x", POS_INF) == 5

    def test_node_existed_at(self, doem):
        doem.annotate_node("a", Cre(T2))
        assert not doem.node_existed_at("a", T1)
        assert doem.node_existed_at("a", T2)
        assert doem.node_existed_at("x", NEG_INF)  # no cre -> original

    def test_live_children_filters(self, doem):
        doem.annotate_arc("a", "val", "x", Rem(T2))
        assert list(doem.live_children("a", T1)) == [("val", "x")]
        assert list(doem.live_children("a", T3)) == []


class TestCopyEquality:
    def test_copy_independent(self, doem):
        doem.annotate_node("x", Upd(T1, 1))
        clone = doem.copy()
        clone.annotate_node("x", Upd(T2, 2))
        assert len(doem.node_annotations("x")) == 1
        assert len(clone.node_annotations("x")) == 2

    def test_same_as(self, doem):
        doem.annotate_node("x", Upd(T1, 1))
        assert doem.same_as(doem.copy())
        other = doem.copy()
        other.annotate_arc("r", "child", "a", Rem(T3))
        assert not doem.same_as(other)

    def test_describe_and_repr(self, doem):
        doem.annotate_node("x", Upd(T1, 1))
        assert "upd" in doem.describe()
        assert "annotations=1" in repr(doem)
