"""Tests for DOEM history compaction (Section 6.1, idea #3)."""

import pytest

from repro import (
    build_doem,
    compact,
    current_snapshot,
    encoded_history,
    is_feasible,
    original_snapshot,
    parse_timestamp,
    random_database,
    random_history,
    snapshot_at,
)


class TestGuideCompaction:
    def test_cutoff_becomes_original(self, guide_doem):
        cut = compact(guide_doem, "3Jan97")
        assert original_snapshot(cut).same_as(snapshot_at(guide_doem,
                                                          "3Jan97"))

    def test_recent_history_preserved(self, guide_doem):
        cut = compact(guide_doem, "3Jan97")
        for when in ("3Jan97", "5Jan97", "7Jan97", "8Jan97", "1Feb97"):
            assert snapshot_at(cut, when).same_as(
                snapshot_at(guide_doem, when)), when

    def test_current_snapshot_identical(self, guide_doem):
        cut = compact(guide_doem, "3Jan97")
        assert current_snapshot(cut).same_as(current_snapshot(guide_doem))

    def test_history_is_suffix(self, guide_doem, guide_history):
        cut = compact(guide_doem, "3Jan97")
        remaining = encoded_history(cut)
        times = [str(t) for t in remaining.timestamps()]
        assert times == ["5Jan97", "8Jan97"]
        # the surviving change sets are verbatim
        expected = guide_history.entries()[1:]
        assert remaining.entries() == expected

    def test_old_annotations_forgotten(self, guide_doem):
        cut = compact(guide_doem, "3Jan97")
        # the 1Jan97 price update and Hakata creation are gone...
        assert cut.node_annotations("n1") == ()
        assert cut.node_annotations("n2") == ()
        # ...but the 5Jan97 comment creation and 8Jan97 removal remain.
        assert len(cut.node_annotations("n5")) == 1
        assert len(cut.arc_annotations("r2", "parking", "n7")) == 1

    def test_result_is_feasible(self, guide_doem):
        for when in ("31Dec96", "3Jan97", "6Jan97", "9Jan97"):
            assert is_feasible(compact(guide_doem, when)), when

    def test_compact_everything(self, guide_doem):
        cut = compact(guide_doem, "1Feb97")
        assert cut.annotation_count() == 0
        assert cut.graph.same_as(current_snapshot(guide_doem))

    def test_compact_before_everything_is_identity_ish(self, guide_doem):
        cut = compact(guide_doem, "1Dec96")
        assert cut.same_as(guide_doem)

    def test_source_not_modified(self, guide_doem):
        before = guide_doem.copy()
        compact(guide_doem, "3Jan97")
        assert guide_doem.same_as(before)

    def test_size_never_grows(self, guide_doem):
        cut = compact(guide_doem, "6Jan97")
        assert len(cut.graph) <= len(guide_doem.graph)
        assert cut.graph.arc_count() <= guide_doem.graph.arc_count()
        assert cut.annotation_count() < guide_doem.annotation_count()

    def test_dead_before_cutoff_disappears(self):
        """A subtree removed before the cutoff leaves no trace."""
        from repro import COMPLEX, OEMDatabase, OEMHistory, RemArc
        db = OEMDatabase(root="r")
        db.create_node("a", COMPLEX)
        db.create_node("x", 7)
        db.add_arc("r", "keep", "a")
        db.add_arc("r", "drop", "x")
        history = OEMHistory([("1Jan97", [RemArc("r", "drop", "x")])])
        doem = build_doem(db, history)
        cut = compact(doem, "2Jan97")
        assert not cut.graph.has_node("x")
        assert cut.graph.has_node("a")


class TestCompactionProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_histories(self, seed):
        db = random_database(seed=seed, nodes=25)
        history = random_history(db, seed=seed, steps=6)
        doem = build_doem(db, history)
        times = history.timestamps()
        if len(times) < 3:
            pytest.skip("history too short")
        cutoff = times[len(times) // 2]
        cut = compact(doem, cutoff)

        assert is_feasible(cut), seed
        assert original_snapshot(cut).same_as(snapshot_at(doem, cutoff))
        for when in times:
            if when > cutoff:
                assert snapshot_at(cut, when).same_as(
                    snapshot_at(doem, when)), (seed, when)
        assert current_snapshot(cut).same_as(current_snapshot(doem))
        assert cut.annotation_count() <= doem.annotation_count()

    @pytest.mark.parametrize("seed", range(3))
    def test_chorel_agrees_after_cutoff(self, seed):
        """Post-cutoff change queries answer identically."""
        from repro import ChorelEngine
        db = random_database(seed=seed + 40, nodes=25)
        history = random_history(db, seed=seed + 40, steps=6)
        doem = build_doem(db, history)
        times = history.timestamps()
        cutoff = times[len(times) // 2]
        cut = compact(doem, cutoff)
        query = (f"select X, T from root.<add at T>item X "
                 f"where T > {cutoff}")
        full = sorted(map(str, ChorelEngine(doem, name="root").run(query)))
        compacted = sorted(map(str, ChorelEngine(cut, name="root").run(query)))
        assert full == compacted, seed

    def test_incremental_compaction_composes(self, guide_doem):
        """compact(compact(D, t1), t2) == compact(D, t2) for t1 <= t2."""
        once = compact(compact(guide_doem, "3Jan97"), "6Jan97")
        direct = compact(guide_doem, "6Jan97")
        assert once.same_as(direct)
