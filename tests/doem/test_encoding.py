"""Tests for the DOEM-in-OEM encoding (Section 5.1)."""

import pytest

from repro import (
    COMPLEX,
    DOEMDatabase,
    OEMDatabase,
    OEMHistory,
    RemArc,
    UpdNode,
    build_doem,
    decode_doem,
    encode_doem,
    parse_timestamp,
)
from repro.doem.encoding import history_label, label_from_history
from repro.errors import EncodingError


class TestEncodingStructure:
    """The &val/&cre/&upd/&l-history scheme, checked against Figure 5."""

    def test_complex_objects_get_val_self_loop(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        assert oem.has_arc("r1", "&val", "r1")

    def test_atomic_objects_get_val_atom(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        val_nodes = list(oem.children("n1", "&val"))
        assert len(val_nodes) == 1
        assert oem.value(val_nodes[0]) == 20  # current value

    def test_cre_subobject(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        cre_nodes = list(oem.children("n2", "&cre"))
        assert [oem.value(node) for node in cre_nodes] == \
            [parse_timestamp("1Jan97")]

    def test_upd_record_has_time_ov_nv(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        records = list(oem.children("n1", "&upd"))
        assert len(records) == 1
        record = records[0]
        assert [oem.value(n) for n in oem.children(record, "&time")] == \
            [parse_timestamp("1Jan97")]
        assert [oem.value(n) for n in oem.children(record, "&ov")] == [10]
        # the redundant &nv: the value after the update (current: 20)
        assert [oem.value(n) for n in oem.children(record, "&nv")] == [20]

    def test_live_arcs_directly_accessible(self, guide_doem):
        encoded = encode_doem(guide_doem)
        assert encoded.oem.has_arc("guide", "restaurant", "r1")
        assert encoded.oem.has_arc("guide", "restaurant", "n2")

    def test_removed_arc_not_directly_accessible(self, guide_doem):
        # "only arcs that exist in the current snapshot ... are accessible
        # directly via their labels in the encoding."
        encoded = encode_doem(guide_doem)
        assert not encoded.oem.has_arc("r2", "parking", "n7")

    def test_every_arc_has_history_object(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        histories = list(oem.children("r2", "&parking-history"))
        assert len(histories) == 1
        record = histories[0]
        assert list(oem.children(record, "&target")) == ["n7"]
        rems = [oem.value(n) for n in oem.children(record, "&rem")]
        assert rems == [parse_timestamp("8Jan97")]

    def test_unannotated_arc_history_object_is_bare(self, guide_doem):
        encoded = encode_doem(guide_doem)
        oem = encoded.oem
        histories = list(oem.children("r1", "&name-history"))
        assert len(histories) == 1
        record = histories[0]
        assert list(oem.children(record, "&add")) == []
        assert list(oem.children(record, "&rem")) == []

    def test_encoding_is_valid_oem(self, guide_doem):
        encode_doem(guide_doem).oem.check()

    def test_object_ids_preserved(self, guide_doem):
        encoded = encode_doem(guide_doem)
        assert set(guide_doem.graph.nodes()) <= encoded.object_ids
        assert encoded.is_encoding_object("n1")

    def test_reserved_label_rejected(self):
        graph = OEMDatabase(root="r")
        graph.create_node("x", 1)
        graph.add_arc("r", "&sneaky", "x")
        with pytest.raises(EncodingError):
            encode_doem(DOEMDatabase(graph))

    def test_complex_old_value_encoded(self):
        # An update that turned a complex object atomic stores ov = C.
        graph = OEMDatabase(root="r")
        graph.create_node("a", COMPLEX)
        graph.add_arc("r", "a", "a")
        history = OEMHistory([("1Jan97", [UpdNode("a", 5)])])
        doem = build_doem(graph, history)
        encoded = encode_doem(doem)
        decoded = decode_doem(encoded)
        assert decoded.same_as(doem)


class TestHistoryLabels:
    def test_round_trip(self):
        assert history_label("price") == "&price-history"
        assert label_from_history("&price-history") == "price"

    def test_non_history_labels(self):
        assert label_from_history("price") is None
        assert label_from_history("&val") is None


class TestDecodeRoundTrip:
    def test_guide(self, guide_doem):
        assert decode_doem(encode_doem(guide_doem)).same_as(guide_doem)

    def test_annotation_free(self, guide_db):
        doem = DOEMDatabase(guide_db.copy())
        assert decode_doem(encode_doem(doem)).same_as(doem)

    def test_orphaned_history_preserved(self):
        # A whole subtree removed: its nodes survive only in the history;
        # the &orphan arcs keep them reachable in the encoding.
        graph = OEMDatabase(root="r")
        graph.create_node("x", 5)
        graph.add_arc("r", "v", "x")
        history = OEMHistory([("1Jan97", [RemArc("r", "v", "x")])])
        doem = build_doem(graph, history)
        encoded = encode_doem(doem)
        encoded.oem.check()
        assert decode_doem(encoded).same_as(doem)

    def test_random_histories_round_trip(self):
        from repro import random_database, random_history
        for seed in range(5):
            db = random_database(seed=seed, nodes=25)
            history = random_history(db, seed=seed, steps=4)
            doem = build_doem(db, history)
            assert decode_doem(encode_doem(doem)).same_as(doem), seed


class TestDecodeErrors:
    def _encoded_guide(self, guide_doem):
        return encode_doem(guide_doem)

    def test_missing_val_rejected(self, guide_doem):
        encoded = self._encoded_guide(guide_doem)
        val_node = next(iter(encoded.oem.children("n1", "&val")))
        encoded.oem.remove_arc("n1", "&val", val_node)
        with pytest.raises(EncodingError):
            decode_doem(encoded)

    def test_history_without_target_rejected(self, guide_doem):
        encoded = self._encoded_guide(guide_doem)
        record = next(iter(encoded.oem.children("r1", "&name-history")))
        encoded.oem.remove_arc(record, "&target", "nm1")
        with pytest.raises(EncodingError):
            decode_doem(encoded)

    def test_root_must_be_object(self, guide_doem):
        encoded = self._encoded_guide(guide_doem)
        encoded.object_ids.discard("guide")
        with pytest.raises(EncodingError):
            decode_doem(encoded)

    def test_bad_timestamp_value_rejected(self, guide_doem):
        encoded = self._encoded_guide(guide_doem)
        cre_node = next(iter(encoded.oem.children("n2", "&cre")))
        encoded.oem.update_value(cre_node, "not a timestamp")
        with pytest.raises(EncodingError):
            decode_doem(encoded)
