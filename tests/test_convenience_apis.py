"""Tests for the convenience APIs: object timelines and subgraph extraction."""

import pytest

from repro import COMPLEX, OEMDatabase, parse_timestamp
from repro.errors import UnknownNodeError


class TestTimeline:
    def test_update_history(self, guide_doem):
        events = guide_doem.timeline("n1")
        assert events == [(parse_timestamp("1Jan97"), "value 10 -> 20")]

    def test_creation_with_initial_value(self, guide_doem):
        events = guide_doem.timeline("n3")
        times_and_text = [(str(when), text) for when, text in events]
        assert ("1Jan97", "created with value 'Hakata'") in times_and_text
        assert any("linked from &n2" in text for _, text in events)

    def test_full_object_story(self, guide_doem):
        events = guide_doem.timeline("n2")  # Hakata, the busy object
        texts = [text for _, text in events]
        assert any(text.startswith("created") for text in texts)
        assert any("gained 'name'" in text for text in texts)
        assert any("gained 'comment'" in text for text in texts)
        assert any("linked from &guide" in text for text in texts)
        # chronological
        times = [when for when, _ in events]
        assert times == sorted(times)

    def test_removal_shows_as_unlink(self, guide_doem):
        events = guide_doem.timeline("n7")
        assert any("unlinked from &r2 via 'parking'" in text
                   for _, text in events)

    def test_untouched_object_has_empty_timeline(self, guide_doem):
        assert guide_doem.timeline("nm1") == []

    def test_unknown_object(self, guide_doem):
        with pytest.raises(UnknownNodeError):
            guide_doem.timeline("ghost")

    def test_creation_value_precedes_updates(self):
        """A node created with v0 then updated reports v0 at creation."""
        from repro import (AddArc, CreNode, OEMHistory, UpdNode, build_doem)
        db = OEMDatabase(root="r")
        history = OEMHistory([
            ("1Jan97", [CreNode("x", "v0"), AddArc("r", "v", "x")]),
            ("2Jan97", [UpdNode("x", "v1")]),
        ])
        doem = build_doem(db, history)
        events = [text for _, text in doem.timeline("x")]
        assert "created with value 'v0'" in events
        assert "value 'v0' -> 'v1'" in events


class TestSubgraph:
    def test_extracts_closure(self, guide_db):
        sub = guide_db.subgraph("r2")
        sub.check()
        # Janta reaches its own atoms, the shared parking object, and --
        # through nearby-eats -- Bangkok's subtree.
        assert sub.has_node("n7")
        values = {sub.value(node) for node in sub.nodes()
                  if sub.is_atomic(node)}
        assert "Janta" in values

    def test_leaf_subgraph(self, guide_db):
        sub = guide_db.subgraph("nm1")
        assert len(sub) == 1
        assert sub.value(sub.root) == "Bangkok Cuisine"

    def test_rename_root(self, guide_db):
        sub = guide_db.subgraph("r1", new_root="bangkok")
        assert sub.root == "bangkok"
        assert not sub.has_node("r1")
        sub.check()

    def test_cycles_preserved(self, guide_db):
        sub = guide_db.subgraph("r1")
        assert sub.has_arc("n7", "nearby-eats", "r1")

    def test_source_untouched(self, guide_db):
        before = guide_db.copy()
        guide_db.subgraph("r1")
        assert guide_db.same_as(before)

    def test_unknown_node(self, guide_db):
        with pytest.raises(UnknownNodeError):
            guide_db.subgraph("ghost")

    def test_subgraph_is_queryable(self, guide_db):
        from repro import LorelEngine
        sub = guide_db.subgraph("r2", new_root="janta")
        engine = LorelEngine(sub, name="janta")
        result = engine.run("select N from janta.name N")
        assert [sub.value(node) for node in result.objects()] == ["Janta"]
